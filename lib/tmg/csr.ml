module Obs = Ermes_obs.Obs

type t = {
  n : int;
  m : int;
  delay : int array;
  weight : int array;
  tokens : int array;
  src : int array;
  dst : int array;
  out_row : int array;
  out_adj : int array;
  in_row : int array;
  in_adj : int array;
  tname : string array;
  pname : string array;
}

let log_src = Logs.Src.create "ermes.csr" ~doc:"flat CSR analysis core"

module Log = (val Logs.src_log log_src)

(* ------------------------------------------------------------------ *)
(* Freeze / thaw                                                       *)
(* ------------------------------------------------------------------ *)

(* Rebuild both adjacency directions by counting sort over place ids, so each
   row lists its places in ascending id order — the same per-vertex order a
   freshly built Digraph has, and the order the pointer solvers rebuild after
   rewires ([Howard.refresh] reconstructs out-arc lists from arc-id order). *)
let rebuild_adjacency (g : t) =
  let n = g.n and m = g.m in
  Array.fill g.out_row 0 (n + 1) 0;
  Array.fill g.in_row 0 (n + 1) 0;
  for p = 0 to m - 1 do
    g.out_row.(g.src.(p) + 1) <- g.out_row.(g.src.(p) + 1) + 1;
    g.in_row.(g.dst.(p) + 1) <- g.in_row.(g.dst.(p) + 1) + 1
  done;
  for v = 1 to n do
    g.out_row.(v) <- g.out_row.(v) + g.out_row.(v - 1);
    g.in_row.(v) <- g.in_row.(v) + g.in_row.(v - 1)
  done;
  (* Fill ascending: temporary cursors live in the adj arrays' tail positions
     would be unsafe, so use two small cursor arrays. *)
  let ocur = Array.make (max n 1) 0 and icur = Array.make (max n 1) 0 in
  for v = 0 to n - 1 do
    ocur.(v) <- g.out_row.(v);
    icur.(v) <- g.in_row.(v)
  done;
  for p = 0 to m - 1 do
    g.out_adj.(ocur.(g.src.(p))) <- p;
    ocur.(g.src.(p)) <- ocur.(g.src.(p)) + 1;
    g.in_adj.(icur.(g.dst.(p))) <- p;
    icur.(g.dst.(p)) <- icur.(g.dst.(p)) + 1
  done

let arena_words (g : t) =
  Array.length g.delay + Array.length g.weight + Array.length g.tokens
  + Array.length g.src + Array.length g.dst + Array.length g.out_row
  + Array.length g.out_adj + Array.length g.in_row + Array.length g.in_adj

let of_tmg tmg =
  let n = Tmg.transition_count tmg and m = Tmg.place_count tmg in
  let g =
    {
      n;
      m;
      delay = Array.make (max n 1) 0;
      weight = Array.make (max m 1) 0;
      tokens = Array.make (max m 1) 0;
      src = Array.make (max m 1) 0;
      dst = Array.make (max m 1) 0;
      out_row = Array.make (n + 1) 0;
      out_adj = Array.make (max m 1) 0;
      in_row = Array.make (n + 1) 0;
      in_adj = Array.make (max m 1) 0;
      tname = Array.make (max n 1) "";
      pname = Array.make (max m 1) "";
    }
  in
  for v = 0 to n - 1 do
    g.delay.(v) <- Tmg.delay tmg v;
    g.tname.(v) <- Tmg.transition_name tmg v
  done;
  for p = 0 to m - 1 do
    g.src.(p) <- Tmg.place_src tmg p;
    g.dst.(p) <- Tmg.place_dst tmg p;
    g.tokens.(p) <- Tmg.tokens tmg p;
    g.weight.(p) <- g.delay.(g.dst.(p));
    g.pname.(p) <- Tmg.place_name tmg p
  done;
  rebuild_adjacency g;
  Obs.incr "csr.freeze";
  Obs.incr ~by:(arena_words g) "csr.arena.words";
  g

let to_tmg (g : t) =
  let tmg = Tmg.create () in
  for v = 0 to g.n - 1 do
    ignore (Tmg.add_transition tmg ~name:g.tname.(v) ~delay:g.delay.(v) ())
  done;
  for p = 0 to g.m - 1 do
    ignore
      (Tmg.add_place tmg ~name:g.pname.(p) ~src:g.src.(p) ~dst:g.dst.(p)
         ~tokens:g.tokens.(p) ())
  done;
  tmg

(* ------------------------------------------------------------------ *)
(* Iterative Tarjan over the CSR adjacency                             *)
(* ------------------------------------------------------------------ *)

type components = { comp : int array; comp_count : int }

(* Same visit order as Scc.compute on a freshly built net (roots 0..n-1,
   successors in ascending place-id order), hence the same reverse-topological
   component numbering; all stacks are flat int arrays. *)
let strongly_connected (g : t) =
  let n = g.n in
  let index = Array.make (max n 1) (-1) in
  let lowlink = Array.make (max n 1) 0 in
  let on_stack = Array.make (max n 1) false in
  let comp = Array.make (max n 1) (-1) in
  let stack = Array.make (max n 1) 0 in
  let sp = ref 0 in
  let frame_v = Array.make (max n 1) 0 in
  let frame_it = Array.make (max n 1) 0 in
  let fp = ref 0 in
  let next_index = ref 0 in
  let comp_count = ref 0 in
  let push_frame v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack.(!sp) <- v;
    incr sp;
    on_stack.(v) <- true;
    frame_v.(!fp) <- v;
    frame_it.(!fp) <- g.out_row.(v);
    incr fp
  in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      push_frame root;
      while !fp > 0 do
        let f = !fp - 1 in
        let v = frame_v.(f) in
        if frame_it.(f) < g.out_row.(v + 1) then begin
          let w = g.dst.(g.out_adj.(frame_it.(f))) in
          frame_it.(f) <- frame_it.(f) + 1;
          if index.(w) < 0 then push_frame w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          decr fp;
          if !fp > 0 then begin
            let p = frame_v.(!fp - 1) in
            lowlink.(p) <- min lowlink.(p) lowlink.(v)
          end;
          if lowlink.(v) = index.(v) then begin
            let continue_pop = ref true in
            while !continue_pop do
              decr sp;
              let w = stack.(!sp) in
              on_stack.(w) <- false;
              comp.(w) <- !comp_count;
              if w = v then continue_pop := false
            done;
            incr comp_count
          end
        end
      done
    end
  done;
  { comp = (if n = 0 then [||] else comp); comp_count = !comp_count }

(* ------------------------------------------------------------------ *)
(* Kahn topological sort over a place-selected sub-net                  *)
(* ------------------------------------------------------------------ *)

(* Mirrors Traversal.topological_sort applied to the Digraph whose vertices
   are the transitions and whose arcs are the selected places inserted in
   ascending id order (which is how Liveness.empty_subgraph and Karp's tight
   subgraph build theirs), including the exact leftover-predecessor walk that
   extracts a witness cycle on failure — so ranks and witnesses are
   bit-identical to the pointer path. *)
let topo_over (g : t) ~select =
  let n = g.n in
  let indeg = Array.make (max n 1) 0 in
  for p = 0 to g.m - 1 do
    if select p then indeg.(g.dst.(p)) <- indeg.(g.dst.(p)) + 1
  done;
  (* Selected adjacency in both directions, ascending place id per row. *)
  let srow = Array.make (n + 1) 0 and irow = Array.make (n + 1) 0 in
  for p = 0 to g.m - 1 do
    if select p then begin
      srow.(g.src.(p) + 1) <- srow.(g.src.(p) + 1) + 1;
      irow.(g.dst.(p) + 1) <- irow.(g.dst.(p) + 1) + 1
    end
  done;
  for v = 1 to n do
    srow.(v) <- srow.(v) + srow.(v - 1);
    irow.(v) <- irow.(v) + irow.(v - 1)
  done;
  let ms = srow.(n) in
  let sadj = Array.make (max ms 1) 0 and iadj = Array.make (max ms 1) 0 in
  let scur = Array.make (max n 1) 0 and icur = Array.make (max n 1) 0 in
  for v = 0 to n - 1 do
    scur.(v) <- srow.(v);
    icur.(v) <- irow.(v)
  done;
  for p = 0 to g.m - 1 do
    if select p then begin
      sadj.(scur.(g.src.(p))) <- p;
      scur.(g.src.(p)) <- scur.(g.src.(p)) + 1;
      iadj.(icur.(g.dst.(p))) <- p;
      icur.(g.dst.(p)) <- icur.(g.dst.(p)) + 1
    end
  done;
  let ring = Array.make (n + 1) 0 in
  let qh = ref 0 and qt = ref 0 in
  let qpush v =
    ring.(!qt) <- v;
    qt := (!qt + 1) mod (n + 1)
  in
  let qpop () =
    let v = ring.(!qh) in
    qh := (!qh + 1) mod (n + 1);
    v
  in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then qpush v
  done;
  let ranks = Array.make (max n 1) 0 in
  let emitted = ref 0 in
  while !qh <> !qt do
    let v = qpop () in
    ranks.(v) <- !emitted;
    incr emitted;
    for j = srow.(v) to srow.(v + 1) - 1 do
      let w = g.dst.(sadj.(j)) in
      indeg.(w) <- indeg.(w) - 1;
      if indeg.(w) = 0 then qpush w
    done
  done;
  if !emitted = n then Ok (if n = 0 then [||] else ranks)
  else begin
    (* Cycle extraction, mirroring Traversal.topological_sort's walk: start
       from the first leftover vertex, repeatedly step to the first leftover
       predecessor (in ascending selected-place order), and cut the prefix at
       the first repeated vertex. *)
    let leftover v = indeg.(v) > 0 in
    let start = ref (-1) in
    (let v = ref 0 in
     while !start < 0 && !v < n do
       if leftover !v then start := !v;
       incr v
    done);
    assert (!start >= 0);
    let mark = Array.make n false in
    let first_leftover_pred v =
      let p = ref (-1) in
      let j = ref irow.(v) in
      while !p < 0 && !j < irow.(v + 1) do
        let s = g.src.(iadj.(!j)) in
        if leftover s then p := s;
        incr j
      done;
      !p
    in
    let rec walk v path =
      if mark.(v) then begin
        match path with
        | [] -> assert false
        | head :: rest ->
          let rec prefix acc = function
            | [] -> assert false
            | x :: r -> if x = v then List.rev acc else prefix (x :: acc) r
          in
          head :: prefix [] rest
      end
      else begin
        mark.(v) <- true;
        let p = first_leftover_pred v in
        assert (p >= 0);
        walk p (p :: path)
      end
    in
    let cycle = walk !start [ !start ] in
    let arr = Array.of_list cycle in
    let k = Array.length arr in
    let place_between i =
      let u = arr.(i) and v = arr.((i + 1) mod k) in
      (* First selected place u -> v in ascending id order, matching
         Digraph.find_arc on the sub-net. *)
      let found = ref (-1) in
      let j = ref srow.(u) in
      while !found < 0 && !j < srow.(u + 1) do
        let p = sadj.(!j) in
        if g.dst.(p) = v then found := p;
        incr j
      done;
      assert (!found >= 0);
      !found
    in
    let dead_places = List.init k place_between in
    Error { Liveness.dead_transitions = cycle; dead_places }
  end

let live_ranks g = topo_over g ~select:(fun p -> g.tokens.(p) = 0)
let topo_ranks g = topo_over g ~select:(fun _ -> true)

(* ------------------------------------------------------------------ *)
(* Howard policy iteration on the flat arrays                          *)
(* ------------------------------------------------------------------ *)

let eps = 1e-9
let max_iterations = 200

(* Preallocated per-solver scratch. Every array is sized by the transition
   count (the ring FIFO by n+1); all are reset member-by-member or via
   Array.fill, never reallocated between solves. *)
type scratch = {
  policy : int array;
  lambda : float array;
  x : float array;
  state : int array;  (* 0 unvisited / 1 in progress / 2 done *)
  posn : int array;  (* path position while in progress *)
  path : int array;
  assigned : bool array;
  rev_head : int array;  (* reverse-policy adjacency as head/next lists *)
  rev_next : int array;
  ring : int array;  (* FIFO; at most n entries present at any time *)
  parent : int array;
  plen : int array;
  in_queue : bool array;
  seen : int array;  (* stamped visit marks: O(1) reset per extraction *)
  mutable stamp : int;
  cyc_v : int array;  (* flat concatenation of this round's policy cycles *)
  cyc_start : int array;  (* cycle k spans cyc_v.(cyc_start.(k)..cyc_start.(k+1)-1) *)
  cyc_w : int array;  (* per cycle: delay sum *)
  cyc_t : int array;  (* per cycle: token sum *)
  mutable cyc_count : int;
  best_cyc : int array;  (* best cycle of the component being solved *)
  win_cyc : int array;  (* best cycle across components *)
}

let make_scratch n =
  let mk v = Array.make (max n 1) v in
  {
    policy = mk (-1);
    lambda = Array.make (max n 1) neg_infinity;
    x = Array.make (max n 1) 0.;
    state = mk 0;
    posn = mk 0;
    path = mk 0;
    assigned = Array.make (max n 1) false;
    rev_head = mk (-1);
    rev_next = mk (-1);
    ring = Array.make (n + 1) 0;
    parent = mk (-1);
    plen = mk 0;
    in_queue = Array.make (max n 1) false;
    seen = mk 0;
    stamp = 0;
    cyc_v = mk 0;
    cyc_start = Array.make (n + 1) 0;
    cyc_w = mk 0;
    cyc_t = mk 0;
    cyc_count = 0;
    best_cyc = mk 0;
    win_cyc = mk 0;
  }

type solver = {
  stmg : Tmg.t;
  mutable n : int;
  mutable m : int;
  mutable g : t;
  mutable in_scc : bool array;  (* per place: endpoints share a component *)
  mutable everywhere : bool array;  (* per place: constant true *)
  mutable cost_buf : int array;  (* per place: reduced cost, per SPFA call *)
  mutable fo_row : int array;  (* mask-filtered CSR rows, per SPFA call *)
  mutable fo_adj : int array;  (* mask-filtered CSR arcs, per SPFA call *)
  mutable comp_row : int array;  (* length comp_count+1 *)
  mutable comp_members : int array;  (* ascending within each component *)
  mutable comp_cyclic : bool array;  (* component has an internal place *)
  mutable comp_count : int;
  mutable scc_dirty : bool;
  mutable warm : int array;  (* last converged policy; -1 = none *)
  mutable warmed : bool;
  mutable potentials : int array;  (* last certification fixpoint *)
  mutable liveness : Liveness.dead_cycle option option;
  mutable scratch : scratch;
}

let make_solver tmg =
  List.iter
    (fun c -> Obs.incr ~by:0 ("csr." ^ c))
    [
      "freeze"; "arena.words"; "solve.cold"; "solve.warm"; "cache.liveness_hit";
      "cache.liveness_invalidated"; "cache.scc_hit"; "scc.recomputed";
      "iterations.policy"; "iterations.certify";
    ];
  let g = of_tmg tmg in
  {
    stmg = tmg;
    n = g.n;
    m = g.m;
    g;
    in_scc = [||];
    everywhere = Array.make (max g.m 1) true;
    cost_buf = Array.make (max g.m 1) 0;
    fo_row = Array.make (g.n + 1) 0;
    fo_adj = Array.make (max g.m 1) 0;
    comp_row = [||];
    comp_members = [||];
    comp_cyclic = [||];
    comp_count = 0;
    scc_dirty = true;
    warm = Array.make (max g.n 1) (-1);
    warmed = false;
    potentials = Array.make (max g.n 1) 0;
    liveness = None;
    scratch = make_scratch g.n;
  }

let compute_scc_state s =
  let g = s.g in
  let { comp; comp_count } = strongly_connected g in
  let in_scc = Array.make (max g.m 1) false in
  for p = 0 to g.m - 1 do
    in_scc.(p) <- comp.(g.src.(p)) = comp.(g.dst.(p))
  done;
  (* Bucket members by component via counting sort: ascending vertex id
     within each component, components in ascending id order — the same
     shape Scc.components yields. *)
  let comp_row = Array.make (comp_count + 1) 0 in
  for v = 0 to g.n - 1 do
    comp_row.(comp.(v) + 1) <- comp_row.(comp.(v) + 1) + 1
  done;
  for c = 1 to comp_count do
    comp_row.(c) <- comp_row.(c) + comp_row.(c - 1)
  done;
  let comp_members = Array.make (max g.n 1) 0 in
  let cur = Array.make (max comp_count 1) 0 in
  for c = 0 to comp_count - 1 do
    cur.(c) <- comp_row.(c)
  done;
  for v = 0 to g.n - 1 do
    comp_members.(cur.(comp.(v))) <- v;
    cur.(comp.(v)) <- cur.(comp.(v)) + 1
  done;
  let comp_cyclic = Array.make (max comp_count 1) false in
  for p = 0 to g.m - 1 do
    if in_scc.(p) then comp_cyclic.(comp.(g.src.(p))) <- true
  done;
  s.in_scc <- in_scc;
  s.comp_row <- comp_row;
  s.comp_members <- comp_members;
  s.comp_cyclic <- comp_cyclic;
  s.comp_count <- comp_count;
  s.scc_dirty <- false

(* Re-sync the frozen arrays with the live net, mirroring Howard.refresh:
   delay edits are absorbed by the unconditional weight re-read, endpoint
   rewires rebuild the adjacency (from place-id order, so results never
   depend on rewiring history) and dirty the SCC state, token edits
   invalidate the cached liveness verdict, and count changes re-freeze. *)
let refresh s =
  let n = Tmg.transition_count s.stmg and m = Tmg.place_count s.stmg in
  if n <> s.n || m <> s.m then begin
    if s.liveness <> None then Obs.incr "csr.cache.liveness_invalidated";
    s.g <- of_tmg s.stmg;
    s.n <- n;
    s.m <- m;
    s.in_scc <- [||];
    s.everywhere <- Array.make (max m 1) true;
    s.cost_buf <- Array.make (max m 1) 0;
    s.fo_row <- Array.make (n + 1) 0;
    s.fo_adj <- Array.make (max m 1) 0;
    s.warm <- Array.make (max n 1) (-1);
    s.warmed <- false;
    s.potentials <- Array.make (max n 1) 0;
    s.scc_dirty <- true;
    s.liveness <- None;
    s.scratch <- make_scratch n
  end
  else begin
    let g = s.g in
    let structural = ref false and marking = ref false in
    for v = 0 to n - 1 do
      g.delay.(v) <- Tmg.delay s.stmg v
    done;
    for p = 0 to m - 1 do
      let src = Tmg.place_src s.stmg p and dst = Tmg.place_dst s.stmg p in
      if src <> g.src.(p) || dst <> g.dst.(p) then begin
        structural := true;
        g.src.(p) <- src;
        g.dst.(p) <- dst
      end;
      let tk = Tmg.tokens s.stmg p in
      if tk <> g.tokens.(p) then begin
        marking := true;
        g.tokens.(p) <- tk
      end;
      g.weight.(p) <- g.delay.(dst)
    done;
    if !structural then begin
      rebuild_adjacency g;
      s.scc_dirty <- true
    end;
    if (!structural || !marking) && s.liveness <> None then begin
      Obs.incr "csr.cache.liveness_invalidated";
      s.liveness <- None
    end
  end

(* Evaluate the current policy over the members comp_members.(lo..hi-1):
   find its cycles (recorded in discovery order in the cyc_* buffers), each
   cycle's exact delay/token sums, and the potentials. Mirrors
   Howard.evaluate: same walk order, same backward cycle sweep, same
   propagation equation — identical float results. *)
(* The policy-evaluation and improvement sweeps below use unchecked array
   accesses: every index is a vertex or place id produced by
   [rebuild_adjacency]/[compute_scc_state] over arrays sized n/m, so the
   checks can never fire — eliding them is worth ~25% of solve time. *)

let evaluate s lo hi =
  let g = s.g and sc = s.scratch in
  let members = s.comp_members in
  let state = sc.state and assigned = sc.assigned in
  let rev_head = sc.rev_head and rev_next = sc.rev_next in
  let policy = sc.policy and posn = sc.posn and path = sc.path in
  let dst = g.dst and weight = g.weight and tokens = g.tokens in
  let lambda = sc.lambda and x = sc.x in
  for i = lo to hi - 1 do
    let u = Array.unsafe_get members i in
    Array.unsafe_set state u 0;
    Array.unsafe_set assigned u false;
    Array.unsafe_set rev_head u (-1)
  done;
  for i = lo to hi - 1 do
    let u = Array.unsafe_get members i in
    let d = Array.unsafe_get dst (Array.unsafe_get policy u) in
    Array.unsafe_set rev_next u (Array.unsafe_get rev_head d);
    Array.unsafe_set rev_head d u
  done;
  sc.cyc_count <- 0;
  let cyc_total = ref 0 in
  for i = lo to hi - 1 do
    let start = Array.unsafe_get members i in
    if Array.unsafe_get state start = 0 then begin
      let plen = ref 0 in
      let u = ref start in
      while Array.unsafe_get state !u = 0 do
        Array.unsafe_set state !u 1;
        Array.unsafe_set posn !u !plen;
        Array.unsafe_set path !plen !u;
        incr plen;
        u := Array.unsafe_get dst (Array.unsafe_get policy !u)
      done;
      if Array.unsafe_get state !u = 1 then begin
        (* Closed a new cycle at !u: the path suffix from !u is the cycle,
           in policy order. *)
        let i0 = Array.unsafe_get posn !u in
        let k = sc.cyc_count in
        sc.cyc_start.(k) <- !cyc_total;
        let wsum = ref 0 and tsum = ref 0 in
        for j = i0 to !plen - 1 do
          let v = Array.unsafe_get path j in
          sc.cyc_v.(!cyc_total) <- v;
          incr cyc_total;
          let a = Array.unsafe_get policy v in
          wsum := !wsum + Array.unsafe_get weight a;
          tsum := !tsum + Array.unsafe_get tokens a
        done;
        sc.cyc_start.(k + 1) <- !cyc_total;
        sc.cyc_w.(k) <- !wsum;
        sc.cyc_t.(k) <- !tsum;
        sc.cyc_count <- k + 1
      end;
      for j = 0 to !plen - 1 do
        Array.unsafe_set state (Array.unsafe_get path j) 2
      done
    end
  done;
  (* Potentials: fix each cycle's first vertex at 0, walk the cycle
     backwards, then propagate x(u) = w - lambda*t + x(succ u) over the
     reverse policy adjacency. Cycles are processed in reverse discovery
     order, exactly like the pointer code's consed list. The cycle ratio is
     a direct float division: both operands are exact in 64-bit floats, so
     the correctly-rounded quotient equals [Ratio.to_float (Ratio.make w t)]
     bit for bit. *)
  let ring = sc.ring in
  let cap = Array.length ring in
  let qh = ref 0 and qt = ref 0 in
  let qpush v =
    Array.unsafe_set ring !qt v;
    let t = !qt + 1 in
    qt := if t = cap then 0 else t
  in
  let qpop () =
    let v = Array.unsafe_get ring !qh in
    let h = !qh + 1 in
    qh := if h = cap then 0 else h;
    v
  in
  for k = sc.cyc_count - 1 downto 0 do
    let b = sc.cyc_start.(k) and e = sc.cyc_start.(k + 1) in
    let l = float_of_int sc.cyc_w.(k) /. float_of_int sc.cyc_t.(k) in
    let root = sc.cyc_v.(b) in
    Array.unsafe_set x root 0.;
    Array.unsafe_set lambda root l;
    Array.unsafe_set assigned root true;
    let klen = e - b in
    for i = klen - 1 downto 1 do
      let v = sc.cyc_v.(b + i) and succ_v = sc.cyc_v.(b + ((i + 1) mod klen)) in
      let a = Array.unsafe_get policy v in
      Array.unsafe_set x v
        ((float_of_int (Array.unsafe_get weight a)
         -. (l *. float_of_int (Array.unsafe_get tokens a)))
        +. Array.unsafe_get x succ_v);
      Array.unsafe_set lambda v l;
      Array.unsafe_set assigned v true
    done;
    for i = b to e - 1 do
      qpush sc.cyc_v.(i)
    done
  done;
  while !qh <> !qt do
    let v = qpop () in
    let u = ref (Array.unsafe_get rev_head v) in
    while !u >= 0 do
      if not (Array.unsafe_get assigned !u) then begin
        let a = Array.unsafe_get policy !u in
        let l = Array.unsafe_get lambda v in
        Array.unsafe_set lambda !u l;
        Array.unsafe_set x !u
          ((float_of_int (Array.unsafe_get weight a)
           -. (l *. float_of_int (Array.unsafe_get tokens a)))
          +. Array.unsafe_get x v);
        Array.unsafe_set assigned !u true;
        qpush !u
      end;
      u := Array.unsafe_get rev_next !u
    done
  done

(* One improvement sweep, mirroring Howard.improve (ascending members,
   ascending out-places, same eps tests). *)
let improve s lo hi =
  let g = s.g and sc = s.scratch and in_scc = s.in_scc in
  let members = s.comp_members in
  let out_row = g.out_row and out_adj = g.out_adj in
  let dst = g.dst and weight = g.weight and tokens = g.tokens in
  let lambda = sc.lambda and x = sc.x and policy = sc.policy in
  let improved = ref false in
  for i = lo to hi - 1 do
    let u = Array.unsafe_get members i in
    for j = Array.unsafe_get out_row u to Array.unsafe_get out_row (u + 1) - 1 do
      let a = Array.unsafe_get out_adj j in
      if Array.unsafe_get in_scc a then begin
        let v = Array.unsafe_get dst a in
        let lu = Array.unsafe_get lambda u and lv = Array.unsafe_get lambda v in
        if lv > lu +. eps then begin
          Array.unsafe_set policy u a;
          Array.unsafe_set lambda u lv;
          improved := true
        end
        else if lv > lu -. eps then begin
          let cost =
            float_of_int (Array.unsafe_get weight a)
            -. (lu *. float_of_int (Array.unsafe_get tokens a))
          in
          if cost +. Array.unsafe_get x v > Array.unsafe_get x u +. eps then begin
            Array.unsafe_set policy u a;
            improved := true
          end
        end
      end
    done
  done;
  !improved

(* Howard inside one component: returns the best exact policy-cycle ratio,
   leaving that cycle's vertices in scratch.best_cyc (length returned). *)
let howard_scc s lo hi =
  let g = s.g and sc = s.scratch in
  for i = lo to hi - 1 do
    let u = s.comp_members.(i) in
    let w = s.warm.(u) in
    if w >= 0 && w < g.m && g.src.(w) = u && s.in_scc.(w) then sc.policy.(u) <- w
    else begin
      let a = ref (-1) in
      let j = ref g.out_row.(u) in
      while !a < 0 && !j < g.out_row.(u + 1) do
        let c = g.out_adj.(!j) in
        if s.in_scc.(c) then a := c;
        incr j
      done;
      assert (!a >= 0);
      sc.policy.(u) <- !a
    end
  done;
  let best_r = ref None and best_len = ref 0 in
  let note_cycles () =
    (* Reverse discovery order with a strict comparison: among equals the
       last-discovered cycle wins, matching the pointer code's consed list. *)
    for k = sc.cyc_count - 1 downto 0 do
      let r = Ratio.make sc.cyc_w.(k) sc.cyc_t.(k) in
      let take =
        match !best_r with None -> true | Some r0 -> Ratio.(r > r0)
      in
      if take then begin
        best_r := Some r;
        let b = sc.cyc_start.(k) and e = sc.cyc_start.(k + 1) in
        best_len := e - b;
        Array.blit sc.cyc_v b sc.best_cyc 0 (e - b)
      end
    done
  in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_iterations do
    incr rounds;
    evaluate s lo hi;
    note_cycles ();
    if not (improve s lo hi) then continue_ := false
  done;
  for i = lo to hi - 1 do
    let u = s.comp_members.(i) in
    s.warm.(u) <- sc.policy.(u)
  done;
  match !best_r with
  | Some r -> (r, !best_len, !rounds)
  | None -> assert false

(* Positive-reduced-cost cycle search, mirroring Howard.find_positive_cycle
   (same seeding scan, FIFO order, relaxation order, spurious-trigger resume).
   [d] is relaxed in place; [mask] selects the places worth relaxing. *)
let find_positive_cycle s mask d ratio =
  let g = s.g and sc = s.scratch in
  let n = g.n in
  let p = Ratio.num ratio and q = Ratio.den ratio in
  let dst = g.dst and weight = g.weight and tokens = g.tokens in
  let parent = sc.parent and plen = sc.plen and in_queue = sc.in_queue in
  let ring = sc.ring in
  (* One O(n+m) pass folds the mask into a filtered CSR (arc order within
     each row preserved, so the relaxation sequence is unchanged) and
     precomputes each kept arc's reduced cost — the SPFA loop then carries
     no mask test and no multiplications. *)
  let out_row = g.out_row and out_adj = g.out_adj in
  let cost_buf = s.cost_buf and fo_row = s.fo_row and fo_adj = s.fo_adj in
  let idx = ref 0 in
  for u = 0 to n - 1 do
    Array.unsafe_set fo_row u !idx;
    for j = Array.unsafe_get out_row u to Array.unsafe_get out_row (u + 1) - 1 do
      let a = Array.unsafe_get out_adj j in
      if Array.unsafe_get mask a then begin
        Array.unsafe_set fo_adj !idx a;
        Array.unsafe_set cost_buf a
          ((q * Array.unsafe_get weight a) - (p * Array.unsafe_get tokens a));
        incr idx
      end
    done
  done;
  Array.unsafe_set fo_row n !idx;
  let cost a = Array.unsafe_get cost_buf a in
  Array.fill parent 0 (Array.length parent) (-1);
  Array.fill plen 0 (Array.length plen) 0;
  Array.fill in_queue 0 (Array.length in_queue) false;
  let cap = Array.length ring in
  let qh = ref 0 and qt = ref 0 in
  (* Conditional wrap instead of [mod]: an integer division per queue op is
     measurable in the SPFA loop, and the index never exceeds [cap]. *)
  let qpush v =
    Array.unsafe_set ring !qt v;
    let t = !qt + 1 in
    qt := if t = cap then 0 else t
  in
  let qpop () =
    let v = Array.unsafe_get ring !qh in
    let h = !qh + 1 in
    qh := if h = cap then 0 else h;
    v
  in
  for u = 0 to n - 1 do
    let violated = ref false in
    let j = ref (Array.unsafe_get fo_row u) in
    let stop = Array.unsafe_get fo_row (u + 1) in
    let du = Array.unsafe_get d u in
    while (not !violated) && !j < stop do
      let a = Array.unsafe_get fo_adj !j in
      if du + cost a > Array.unsafe_get d (Array.unsafe_get dst a) then
        violated := true;
      incr j
    done;
    if !violated then begin
      Array.unsafe_set in_queue u true;
      qpush u
    end
  done;
  let extract_cycle v =
    sc.stamp <- sc.stamp + 1;
    let stamp = sc.stamp in
    let entry = ref (-1) in
    let u = ref v in
    let chasing = ref true in
    while !chasing do
      if !u < 0 || sc.parent.(!u) < 0 then chasing := false
      else if sc.seen.(!u) = stamp then begin
        entry := !u;
        chasing := false
      end
      else begin
        sc.seen.(!u) <- stamp;
        u := g.src.(sc.parent.(!u))
      end
    done;
    if !entry < 0 then None
    else begin
      let rec collect u acc =
        let a = sc.parent.(u) in
        let src = g.src.(a) in
        if src = !entry then a :: acc else collect src (a :: acc)
      in
      Some (collect !entry [])
    end
  in
  let found = ref None in
  while !found = None && !qh <> !qt do
    let u = qpop () in
    Array.unsafe_set in_queue u false;
    (* [d.(u)] and [plen.(u)] are re-read per arc: a self-loop place can
       relax them mid-scan, and the pointer code sees that update. *)
    for j = Array.unsafe_get fo_row u to Array.unsafe_get fo_row (u + 1) - 1 do
      let a = Array.unsafe_get fo_adj j in
      let v = Array.unsafe_get dst a in
      let nd = Array.unsafe_get d u + cost a in
      if nd > Array.unsafe_get d v then begin
        Array.unsafe_set d v nd;
        Array.unsafe_set parent v a;
        Array.unsafe_set plen v (Array.unsafe_get plen u + 1);
        let detected =
          if Array.unsafe_get plen v >= n then begin
            match extract_cycle v with
            | Some arcs ->
              found := Some arcs;
              true
            | None ->
              Array.unsafe_set plen v 0;
              false
          end
          else false
        in
        if (not detected) && not (Array.unsafe_get in_queue v) then begin
          Array.unsafe_set in_queue v true;
          qpush v
        end
      end
    done
  done;
  !found

let exact_ratio (g : t) arcs =
  let wsum = List.fold_left (fun acc a -> acc + g.weight.(a)) 0 arcs in
  let tsum = List.fold_left (fun acc a -> acc + g.tokens.(a)) 0 arcs in
  assert (tsum > 0);
  Ratio.make wsum tsum

let certify s mask ratio0 arcs0 =
  let ratio = ref ratio0 and arcs = ref arcs0 and rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match find_positive_cycle s mask s.potentials !ratio with
    | None -> continue_ := false
    | Some a ->
      ratio := exact_ratio s.g a;
      arcs := a;
      incr rounds
  done;
  (!ratio, !arcs, !rounds)

let solve s =
  Obs.span "csr.solve" @@ fun () ->
  refresh s;
  Obs.incr (if s.warmed then "csr.solve.warm" else "csr.solve.cold");
  let dead =
    match s.liveness with
    | Some verdict ->
      Obs.incr "csr.cache.liveness_hit";
      verdict
    | None ->
      let verdict =
        match live_ranks s.g with Ok _ -> None | Error d -> Some d
      in
      s.liveness <- Some verdict;
      verdict
  in
  match dead with
  | Some dead ->
    Log.debug (fun m ->
        m "solve: dead cycle of %d places" (List.length dead.Liveness.dead_places));
    Error (Howard.Deadlock dead)
  | None ->
    if s.scc_dirty then begin
      compute_scc_state s;
      Obs.incr "csr.scc.recomputed"
    end
    else Obs.incr "csr.cache.scc_hit";
    if not (Array.exists Fun.id s.comp_cyclic) then Error Howard.No_cycle
    else begin
      let g = s.g and sc = s.scratch in
      let best = ref None and iters = ref 0 and win_len = ref 0 in
      for c = 0 to s.comp_count - 1 do
        if s.comp_cyclic.(c) then begin
          let r, len, rounds = howard_scc s s.comp_row.(c) s.comp_row.(c + 1) in
          iters := !iters + rounds;
          let take =
            match !best with None -> true | Some r0 -> Ratio.(r > r0)
          in
          if take then begin
            best := Some r;
            win_len := len;
            Array.blit sc.best_cyc 0 sc.win_cyc 0 len
          end
        end
      done;
      s.warmed <- true;
      match !best with
      | None -> assert false
      | Some ratio ->
        (* Seed the exact certification with a concrete arc list: between
           consecutive cycle vertices pick the parallel place of maximal
           reduced weight, scanning ascending and keeping the first maximum
           — the same choice Howard.solve's fold makes. *)
        let k = !win_len in
        let num = Ratio.num ratio and den = Ratio.den ratio in
        let seed_arcs =
          List.init k (fun i ->
              let u = sc.win_cyc.(i) and v = sc.win_cyc.((i + 1) mod k) in
              let best_a = ref (-1) and best_score = ref 0 in
              for j = g.out_row.(u) to g.out_row.(u + 1) - 1 do
                let a = g.out_adj.(j) in
                if g.dst.(a) = v then begin
                  let score = (g.weight.(a) * den) - (g.tokens.(a) * num) in
                  if !best_a < 0 || score > !best_score then begin
                    best_a := a;
                    best_score := score
                  end
                end
              done;
              assert (!best_a >= 0);
              !best_a)
        in
        let seed_ratio = exact_ratio g seed_arcs in
        assert (Ratio.(seed_ratio >= ratio));
        let final_ratio, final_arcs, cancels =
          certify s s.in_scc seed_ratio seed_arcs
        in
        (* Extend the certification fixpoint over every place: cross-SCC
           places carry no cycle, so this must reach a fixpoint — the
           resulting potentials are the whole-net optimality witness. *)
        (match find_positive_cycle s s.everywhere s.potentials final_ratio with
        | None -> ()
        | Some _ -> assert false);
        Obs.incr ~by:!iters "csr.iterations.policy";
        Obs.incr ~by:cancels "csr.iterations.certify";
        Log.debug (fun m ->
            m "solve: cycle time %a after %d policy + %d certify iterations"
              Ratio.pp final_ratio !iters cancels);
        Ok
          {
            Howard.cycle_time = final_ratio;
            critical_places = final_arcs;
            critical_transitions = List.map (fun a -> g.dst.(a)) final_arcs;
            potentials = Array.copy s.potentials;
            howard_iterations = !iters;
            cancel_iterations = cancels;
          }
    end

let cycle_time tmg = solve (make_solver tmg)

(* ------------------------------------------------------------------ *)
(* Karp on the flat arrays                                             *)
(* ------------------------------------------------------------------ *)

let karp_unit (g : t) =
  for p = 0 to g.m - 1 do
    if g.tokens.(p) <> 1 then
      invalid_arg "Csr.karp_unit: every place must hold exactly one token"
  done;
  let { comp; comp_count } = strongly_connected g in
  let comp_row = Array.make (comp_count + 1) 0 in
  for v = 0 to g.n - 1 do
    comp_row.(comp.(v) + 1) <- comp_row.(comp.(v) + 1) + 1
  done;
  for c = 1 to comp_count do
    comp_row.(c) <- comp_row.(c) + comp_row.(c - 1)
  done;
  let members = Array.make (max g.n 1) 0 in
  let cur = Array.make (max comp_count 1) 0 in
  for c = 0 to comp_count - 1 do
    cur.(c) <- comp_row.(c)
  done;
  for v = 0 to g.n - 1 do
    members.(cur.(comp.(v))) <- v;
    cur.(comp.(v)) <- cur.(comp.(v)) + 1
  done;
  let idx = Array.make (max g.n 1) 0 in
  let best = ref None in
  for c = 0 to comp_count - 1 do
    let lo = comp_row.(c) and hi = comp_row.(c + 1) in
    let nc = hi - lo in
    (* Internal places of the component. *)
    let internal = ref 0 in
    for i = lo to hi - 1 do
      let u = members.(i) in
      for j = g.out_row.(u) to g.out_row.(u + 1) - 1 do
        if comp.(g.dst.(g.out_adj.(j))) = c then incr internal
      done
    done;
    if !internal > 0 then begin
      for i = lo to hi - 1 do
        idx.(members.(i)) <- i - lo
      done;
      (* d.(k).(v) = max weight of a k-arc walk ending at v; walks start
         anywhere (virtual 0-weight root). *)
      let neg = min_int / 4 in
      let d = Array.make_matrix (nc + 1) nc neg in
      Array.fill d.(0) 0 nc 0;
      for k = 1 to nc do
        let dk = d.(k) and dk1 = d.(k - 1) in
        for i = lo to hi - 1 do
          let u = members.(i) in
          let ui = i - lo in
          if dk1.(ui) > neg then
            for j = g.out_row.(u) to g.out_row.(u + 1) - 1 do
              let a = g.out_adj.(j) in
              let v = g.dst.(a) in
              if comp.(v) = c then begin
                let vi = idx.(v) in
                if dk1.(ui) + g.weight.(a) > dk.(vi) then
                  dk.(vi) <- dk1.(ui) + g.weight.(a)
              end
            done
        done
      done;
      (* lambda* = max_v min_k (d_n(v) - d_k(v)) / (n - k). *)
      for v = 0 to nc - 1 do
        if d.(nc).(v) > neg then begin
          let vmin = ref None in
          for k = 0 to nc - 1 do
            if d.(k).(v) > neg then begin
              let r = Ratio.make (d.(nc).(v) - d.(k).(v)) (nc - k) in
              match !vmin with
              | None -> vmin := Some r
              | Some r0 -> if Ratio.(r < r0) then vmin := Some r
            end
          done;
          match (!vmin, !best) with
          | Some r, None -> best := Some r
          | Some r, Some b -> if Ratio.(r > b) then best := Some r
          | None, _ -> ()
        end
      done
    end
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Lawler on the flat arrays                                           *)
(* ------------------------------------------------------------------ *)

(* Bellman-Ford longest-path probe at float reduced cost w - lambda*t,
   mirroring Lawler.positive_cycle_float (same relaxation order, same slack,
   same extraction), so the whole binary search tracks the pointer
   implementation float for float. *)
let positive_cycle_float (g : t) lambda =
  let n = g.n in
  let cost a = float_of_int g.weight.(a) -. (lambda *. float_of_int g.tokens.(a)) in
  let d = Array.make (max n 1) 0. in
  let parent = Array.make (max n 1) (-1) in
  let changed = ref true in
  let last_updated = ref (-1) in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    for u = 0 to n - 1 do
      for j = g.out_row.(u) to g.out_row.(u + 1) - 1 do
        let a = g.out_adj.(j) in
        let v = g.dst.(a) in
        let nd = d.(u) +. cost a in
        if nd > d.(v) +. 1e-12 then begin
          d.(v) <- nd;
          parent.(v) <- a;
          changed := true;
          last_updated := v
        end
      done
    done
  done;
  if not !changed then None
  else begin
    let u = ref !last_updated in
    for _ = 1 to n do
      if parent.(!u) >= 0 then u := g.src.(parent.(!u))
    done;
    let seen = Array.make (max n 1) false in
    let rec chase v =
      if seen.(v) || parent.(v) < 0 then v
      else begin
        seen.(v) <- true;
        chase g.src.(parent.(v))
      end
    in
    let entry = chase !u in
    if parent.(entry) < 0 then None
    else begin
      let rec collect v acc =
        let a = parent.(v) in
        let s = g.src.(a) in
        if s = entry then Some (a :: acc) else collect s (a :: acc)
      in
      collect entry []
    end
  end

let exact_ratio_opt (g : t) arcs =
  let wsum = List.fold_left (fun acc a -> acc + g.weight.(a)) 0 arcs in
  let tsum = List.fold_left (fun acc a -> acc + g.tokens.(a)) 0 arcs in
  if tsum = 0 then None else Some (Ratio.make wsum tsum)

let potentials_at (g : t) ratio =
  let n = g.n in
  let p = Ratio.num ratio and q = Ratio.den ratio in
  let cost a = (q * g.weight.(a)) - (p * g.tokens.(a)) in
  let d = Array.make (max n 1) 0 in
  let in_queue = Array.make (max n 1) true in
  let ring = Array.make (n + 1) 0 in
  let qh = ref 0 and qt = ref 0 in
  let qpush v =
    ring.(!qt) <- v;
    qt := (!qt + 1) mod (n + 1)
  in
  let qpop () =
    let v = ring.(!qh) in
    qh := (!qh + 1) mod (n + 1);
    v
  in
  for u = 0 to n - 1 do
    qpush u
  done;
  while !qh <> !qt do
    let u = qpop () in
    in_queue.(u) <- false;
    for j = g.out_row.(u) to g.out_row.(u + 1) - 1 do
      let a = g.out_adj.(j) in
      let v = g.dst.(a) in
      let nd = d.(u) + cost a in
      if nd > d.(v) then begin
        d.(v) <- nd;
        if not in_queue.(v) then begin
          in_queue.(v) <- true;
          qpush v
        end
      end
    done
  done;
  if n = 0 then [||] else d

let lawler_certified (g : t) =
  match live_ranks g with
  | Error _ -> Error Lawler.Deadlock
  | Ok _ -> (
    match positive_cycle_float g (-1.) with
    | None -> Error Lawler.No_cycle
    | Some seed ->
      let best = ref (Option.get (exact_ratio_opt g seed), seed) in
      let hi =
        ref
          (1.
          +. (let acc = ref 0. in
              for p = 0 to g.m - 1 do
                acc := !acc +. float_of_int g.weight.(p)
              done;
              !acc))
      in
      let lo = ref (Ratio.to_float (fst !best)) in
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        match positive_cycle_float g mid with
        | Some arcs -> (
          match exact_ratio_opt g arcs with
          | Some r ->
            if Ratio.(r > fst !best) then best := (r, arcs);
            lo := Float.max mid (Ratio.to_float r)
          | None -> lo := mid)
        | None -> hi := mid
      done;
      let rec certify_exact () =
        let r, _ = !best in
        match positive_cycle_float g (Ratio.to_float r +. 1e-12) with
        | None -> ()
        | Some arcs -> (
          match exact_ratio_opt g arcs with
          | Some r' when Ratio.(r' > r) ->
            best := (r', arcs);
            certify_exact ()
          | Some _ | None -> ())
      in
      certify_exact ();
      let ratio, arcs = !best in
      Ok (ratio, arcs, potentials_at g ratio))
