(** Elementary-cycle enumeration (Johnson's algorithm).

    Enumerating all elementary cycles is the impractical-by-definition oracle
    the paper contrasts with Howard's algorithm ("calculating the minimal
    cycle mean ... by Definition 3 is impractical, since it requires the
    enumeration of all the elementary cycles"). It is implemented here for
    exactly that role: a ground-truth cross-check for small nets in the test
    suite and the ablation benchmark. *)

exception Too_many_cycles of int
(** Raised when enumeration exceeds the caller's cycle budget. *)

val elementary_cycles :
  ?limit:int -> ('v, 'a) Ermes_digraph.Digraph.t -> Ermes_digraph.Digraph.arc list list
(** [elementary_cycles g] lists every elementary (no repeated vertex) directed
    cycle of [g], each as its arcs in order. Parallel arcs yield distinct
    cycles. Self-loops are length-1 cycles.
    @param limit abort with {!Too_many_cycles} beyond this many cycles
    (default 1_000_000). *)

val count : ?limit:int -> ('v, 'a) Ermes_digraph.Digraph.t -> int
(** Number of elementary cycles. *)

val max_cycle_ratio_brute : Tmg.t -> (Ratio.t * Tmg.place list) option
(** Exact maximum cycle ratio (delay sum / token sum) by full enumeration,
    with a witness cycle. [None] when the net is acyclic.
    @raise Too_many_cycles on nets with more than a million cycles
    @raise Invalid_argument if some cycle is token-free (deadlock — the ratio
    is unbounded; check {!Liveness.is_live} first). *)
