(** Cycle-time analysis of timed marked graphs (paper §3).

    The cycle time of a strongly connected TMG is the reciprocal of the
    minimum cycle mean (Definition 3): equivalently, the {e maximum cycle
    ratio} over all directed cycles [C] of [delay(C) / tokens(C)]. Its
    reciprocal is the steady-state throughput. A cycle attaining the maximum
    is a {e critical cycle}.

    The implementation follows the paper's choice of Howard's policy-iteration
    algorithm (Cochet-Terrasson et al., 1998), run per strongly connected
    component with floating-point values, and then {e certifies the result
    exactly}: the candidate ratio [p/q] from the final policy is verified by
    searching for a cycle of positive reduced cost [q*delay - p*tokens]
    (Bellman-Ford with cycle extraction). Any positive cycle found has a
    strictly larger ratio and replaces the candidate, so the returned value is
    the exact maximum regardless of floating-point behaviour, and the
    procedure terminates because cycle ratios form a finite set. *)

type result = {
  cycle_time : Ratio.t;  (** max over cycles of (sum of delays / sum of tokens) *)
  critical_places : Tmg.place list;
      (** one critical cycle, as its places in arc order *)
  critical_transitions : Tmg.transition list;
      (** the same cycle, as the consumer transition of each place *)
  howard_iterations : int;  (** policy-improvement rounds (all components) *)
  cancel_iterations : int;
      (** exact-verification rounds that improved the candidate (0 when the
          policy iteration already converged to the optimum) *)
}

type error =
  | Deadlock of Liveness.dead_cycle
      (** a token-free cycle exists: the cycle time is unbounded *)
  | No_cycle  (** the graph is acyclic: no steady-state constraint *)

val cycle_time : Tmg.t -> (result, error) Stdlib.result
(** [cycle_time tmg] computes the exact cycle time and a critical cycle.
    Works on arbitrary (not necessarily strongly connected) nets by taking the
    worst component. *)

val throughput : result -> Ratio.t
(** Reciprocal of the cycle time. *)
