(** Cycle-time analysis of timed marked graphs (paper §3).

    The cycle time of a strongly connected TMG is the reciprocal of the
    minimum cycle mean (Definition 3): equivalently, the {e maximum cycle
    ratio} over all directed cycles [C] of [delay(C) / tokens(C)]. Its
    reciprocal is the steady-state throughput. A cycle attaining the maximum
    is a {e critical cycle}.

    The implementation follows the paper's choice of Howard's policy-iteration
    algorithm (Cochet-Terrasson et al., 1998), run per strongly connected
    component with floating-point values, and then {e certifies the result
    exactly}: the candidate ratio [p/q] from the final policy is verified by
    searching for a cycle of positive reduced cost [q*delay - p*tokens]
    (Bellman-Ford with cycle extraction). Any positive cycle found has a
    strictly larger ratio and replaces the candidate, so the returned value is
    the exact maximum regardless of floating-point behaviour, and the
    procedure terminates because cycle ratios form a finite set. *)

type result = {
  cycle_time : Ratio.t;  (** max over cycles of (sum of delays / sum of tokens) *)
  critical_places : Tmg.place list;
      (** one critical cycle, as its places in arc order *)
  critical_transitions : Tmg.transition list;
      (** the same cycle, as the consumer transition of each place *)
  potentials : int array;
      (** per-transition optimality witness at [cycle_time] = p/q: for
          {e every} place from [u] to [v],
          [potentials.(v) >= potentials.(u) + q*delay(v) - p*tokens], so no
          directed cycle has ratio above p/q. Together with
          [critical_places] (which attains p/q exactly) this is a complete,
          independently checkable certificate — see [Ermes_verify.Verify]. *)
  howard_iterations : int;  (** policy-improvement rounds (all components) *)
  cancel_iterations : int;
      (** exact-verification rounds that improved the candidate (0 when the
          policy iteration already converged to the optimum) *)
}

type error =
  | Deadlock of Liveness.dead_cycle
      (** a token-free cycle exists: the cycle time is unbounded *)
  | No_cycle  (** the graph is acyclic: no steady-state constraint *)

val cycle_time : Tmg.t -> (result, error) Stdlib.result
(** [cycle_time tmg] computes the exact cycle time and a critical cycle.
    Works on arbitrary (not necessarily strongly connected) nets by taking the
    worst component. *)

type solver
(** A reusable analysis context bound to one {!Tmg.t}. It caches everything
    [cycle_time] would recompute from scratch — the compact arc view, the SCC
    decomposition, the liveness verdict — plus the last converged Howard
    policy, and re-syncs against the live net on every {!solve}:

    - delay edits ({!Tmg.set_delay}) are absorbed for free;
    - endpoint rewires ({!Tmg.rewire_place}) trigger an SCC recomputation but
      keep the warm policy where it remains a valid internal arc;
    - token edits invalidate only the cached liveness verdict;
    - a change in transition/place count falls back to a full rebuild.

    Warm-starting affects only the number of policy-improvement rounds and
    possibly {e which} of several equally critical cycles is reported; the
    returned cycle time is exact regardless, because the final candidate is
    always certified by exact positive-cycle cancellation. *)

val make_solver : Tmg.t -> solver

val solve : solver -> (result, error) Stdlib.result
(** [solve s] re-syncs the cached state with the net and computes the cycle
    time, warm-started from the previous call's policy. The first call is
    equivalent to {!cycle_time}; later calls return the same verdicts and the
    same exact cycle time a fresh analysis would. *)

val throughput : result -> Ratio.t
(** Reciprocal of the cycle time. *)
