type error = Deadlock | No_cycle

(* Arc view: weight = delay of the consumer transition, tokens = marking. *)
type view = {
  n : int;
  src : int array;
  dst : int array;
  w : int array;
  t : int array;
  out_arcs : int list array;
}

let view_of_tmg tmg =
  let n = Tmg.transition_count tmg and m = Tmg.place_count tmg in
  let src = Array.make m 0 and dst = Array.make m 0 in
  let w = Array.make m 0 and t = Array.make m 0 in
  let out_arcs = Array.make n [] in
  List.iter
    (fun p ->
      src.(p) <- Tmg.place_src tmg p;
      dst.(p) <- Tmg.place_dst tmg p;
      w.(p) <- Tmg.delay tmg dst.(p);
      t.(p) <- Tmg.tokens tmg p)
    (Tmg.places tmg);
  for p = m - 1 downto 0 do
    out_arcs.(src.(p)) <- p :: out_arcs.(src.(p))
  done;
  { n; src; dst; w; t; out_arcs }

(* Bellman-Ford longest-path feasibility probe with float reduced costs
   w - lambda*t: returns a positive cycle's arcs if one exists. Classic
   n-rounds-then-extract formulation. *)
let positive_cycle_float view lambda =
  let cost a = float_of_int view.w.(a) -. (lambda *. float_of_int view.t.(a)) in
  let d = Array.make view.n 0. in
  let parent = Array.make view.n (-1) in
  let changed = ref true in
  let last_updated = ref (-1) in
  let rounds = ref 0 in
  while !changed && !rounds <= view.n do
    changed := false;
    incr rounds;
    Array.iteri
      (fun u arcs ->
        List.iter
          (fun a ->
            let v = view.dst.(a) in
            let nd = d.(u) +. cost a in
            if nd > d.(v) +. 1e-12 then begin
              d.(v) <- nd;
              parent.(v) <- a;
              changed := true;
              last_updated := v
            end)
          arcs)
      view.out_arcs
  done;
  if not !changed then None
  else begin
    (* A vertex updated after n full rounds: walking its parent chain n steps
       lands inside a positive cycle (textbook Bellman-Ford argument). *)
    let u = ref !last_updated in
    for _ = 1 to view.n do
      if parent.(!u) >= 0 then u := view.src.(parent.(!u))
    done;
    (* Collect the cycle with visit marks from the landing vertex. *)
    let seen = Array.make view.n false in
    let rec chase v = if seen.(v) || parent.(v) < 0 then v else begin seen.(v) <- true; chase view.src.(parent.(v)) end in
    let entry = chase !u in
    if parent.(entry) < 0 then None
    else begin
      let rec collect v acc =
        let a = parent.(v) in
        let s = view.src.(a) in
        if s = entry then Some (a :: acc) else collect s (a :: acc)
      in
      collect entry []
    end
  end

let exact_ratio view arcs =
  let wsum = List.fold_left (fun acc a -> acc + view.w.(a)) 0 arcs in
  let tsum = List.fold_left (fun acc a -> acc + view.t.(a)) 0 arcs in
  if tsum = 0 then None else Some (Ratio.make wsum tsum)

(* Exact integer longest-path relaxation at the certified optimum p/q: no
   cycle has positive reduced cost q*w - p*t, so the relaxation reaches a
   fixpoint; the fixpoint potentials witness the optimality of p/q over the
   whole net (pot(dst) >= pot(src) + q*w - p*t for every place). *)
let potentials_at view ratio =
  let p = Ratio.num ratio and q = Ratio.den ratio in
  let cost a = (q * view.w.(a)) - (p * view.t.(a)) in
  let d = Array.make view.n 0 in
  let in_queue = Array.make view.n true in
  let queue = Queue.create () in
  for u = 0 to view.n - 1 do
    Queue.add u queue
  done;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    in_queue.(u) <- false;
    List.iter
      (fun a ->
        let v = view.dst.(a) in
        let nd = d.(u) + cost a in
        if nd > d.(v) then begin
          d.(v) <- nd;
          if not in_queue.(v) then begin
            in_queue.(v) <- true;
            Queue.add v queue
          end
        end)
      view.out_arcs.(u)
  done;
  d

let solve tmg =
  match Liveness.find_dead_cycle tmg with
  | Some _ -> Error Deadlock
  | None ->
    let view = view_of_tmg tmg in
    (* Initial feasibility at lambda = 0 finds some cycle (or none at all). *)
    (match positive_cycle_float view (-1.) with
     | None -> Error No_cycle
     | Some seed ->
       let best = ref (Option.get (exact_ratio view seed), seed) in
       (* Float binary search: lo always feasible (a cycle of ratio > lo
          exists is false at the optimum... invariant: [lo] is the best
          exact ratio seen; [hi] an infeasible upper bound). *)
       let hi = ref (1. +. Array.fold_left (fun acc w -> acc +. float_of_int w) 0. view.w) in
       let lo = ref (Ratio.to_float (fst !best)) in
       for _ = 1 to 60 do
         let mid = 0.5 *. (!lo +. !hi) in
         match positive_cycle_float view mid with
         | Some arcs ->
           (match exact_ratio view arcs with
            | Some r ->
              if Ratio.(r > fst !best) then best := (r, arcs);
              lo := Float.max mid (Ratio.to_float r)
            | None -> lo := mid)
         | None -> hi := mid
       done;
       (* Exactness pass: keep cancelling positive cycles at the current best
          exact ratio until none remains. *)
       let rec certify () =
         let r, _ = !best in
         match positive_cycle_float view (Ratio.to_float r +. 1e-12) with
         | None -> ()
         | Some arcs -> (
           match exact_ratio view arcs with
           | Some r' when Ratio.(r' > r) ->
             best := (r', arcs);
             certify ()
           | Some _ | None -> ())
       in
       certify ();
       Ok (!best, view))

let cycle_time tmg =
  match solve tmg with
  | Ok ((ratio, arcs), _) -> Ok (ratio, arcs)
  | Error e -> Error e

let certified tmg =
  match solve tmg with
  | Ok ((ratio, arcs), view) -> Ok (ratio, arcs, potentials_at view ratio)
  | Error e -> Error e
