(** Flat CSR (compressed sparse row) analysis core.

    {!Tmg.t} is a pointer-rich labelled multigraph: records, closures and
    per-vertex arc {e lists}. Every hot solver loop over it chases pointers
    and allocates. This module freezes a net into unboxed [int array]s —
    transitions and places keep their dense ids ({!Tmg.transition} and
    {!Tmg.place} already {e are} dense ints, so the index mapping between the
    two representations is the identity) — and re-implements the hot solvers
    (Howard policy iteration, Karp, Lawler, liveness/topological ranks,
    Tarjan SCC) as allocation-free loops over those arrays.

    {2 Index-mapping contract}

    [of_tmg] and [to_tmg] are O(V+E) and preserve ids, names, delays, tokens
    and endpoints exactly: transition [v] of the net is row [v] of the CSR
    arrays, place [p] is column [p]. Consumers that hold {!Tmg.place} /
    {!Tmg.transition} handles — {!Ermes_slm.To_tmg.mapping}, incremental
    sessions, certificates — therefore keep working unchanged against CSR
    results: a witness cycle returned here is a plain [Tmg.place list] whose
    ids are valid in the source net.

    {2 Equivalence contract}

    On a freshly built net (no rewiring history), {!solve} mirrors
    {!Howard.solve} operation for operation — same traversal orders, same
    float rounding, same tie-breaking — so verdict, exact ratio, witness
    cycle, potentials and iteration counts are bit-identical. After arc
    rewires the two representations may visit components in different orders
    and can return different (equally valid and equally exact) witnesses;
    the ratio and verdict always agree. *)

type t = {
  n : int;  (** transition count *)
  m : int;  (** place count *)
  delay : int array;  (** per transition: firing delay *)
  weight : int array;
      (** per place: cached [delay.(dst.(p))] — the arc weight used by every
          cycle-ratio solver (each cycle transition counted once) *)
  tokens : int array;  (** per place: initial marking *)
  src : int array;  (** per place: producer transition *)
  dst : int array;  (** per place: consumer transition *)
  out_row : int array;
      (** length [n+1]: out-places of transition [v] are
          [out_adj.(out_row.(v)) .. out_adj.(out_row.(v+1) - 1)] *)
  out_adj : int array;  (** place ids, ascending within each row *)
  in_row : int array;  (** length [n+1]: same, for in-places *)
  in_adj : int array;  (** place ids, ascending within each row *)
  tname : string array;  (** per transition *)
  pname : string array;  (** per place *)
}

val of_tmg : Tmg.t -> t
(** O(V+E) freeze. Ids are preserved (identity mapping). *)

val to_tmg : t -> Tmg.t
(** O(V+E) thaw: rebuilds a net with identical ids, names, delays, endpoints
    and marking. [to_tmg (of_tmg tmg)] is indistinguishable from [tmg]
    through every {!Tmg} accessor. *)

type components = {
  comp : int array;
      (** component id per transition, numbered in reverse topological order
          exactly like {!Ermes_digraph.Scc.compute} on a freshly built net *)
  comp_count : int;
}

val strongly_connected : t -> components
(** Iterative Tarjan over the CSR adjacency: explicit int-array stacks, no
    recursion, no per-vertex allocation — a path graph of 10^6 vertices uses
    O(1) OCaml stack. *)

val live_ranks : t -> (int array, Liveness.dead_cycle) result
(** Liveness by topological ranks of the token-free subgraph, mirroring
    {!Liveness.live_ranks} bit for bit: [Ok ranks] satisfies
    [ranks.(src p) < ranks.(dst p)] for every token-free place [p];
    [Error] carries the same witness cycle the pointer path reports. *)

val topo_ranks : t -> (int array, Liveness.dead_cycle) result
(** Topological ranks over {e all} places (the whole net): the [Acyclic]
    certificate's rank vector. [Error] carries some cycle of the net (its
    places need not be token-free — this is a cyclicity witness, not a
    deadlock witness). *)

(** {2 Howard solver}

    A drop-in replacement for {!Howard.solver}: holds the source net, re-syncs
    the frozen arrays against it on each {!solve} (delay edits absorbed for
    free, token edits invalidate the cached liveness verdict, endpoint rewires
    rebuild the adjacency and the SCC decomposition, count changes re-freeze),
    and warm-starts policy and certification potentials across solves. All
    per-solve scratch is preallocated: the policy-iteration, potential
    propagation and positive-cycle-cancellation inner loops allocate nothing
    but the final result. *)

type solver

val make_solver : Tmg.t -> solver
(** Freeze [tmg] and preallocate all solver scratch. Registers the
    [csr.*] observability counters. *)

val solve : solver -> (Howard.result, Howard.error) result
(** Exact maximum cycle ratio with certificate ingredients (witness places,
    integer potentials), bit-identical to {!Howard.solve} on freshly built
    nets. The result's [potentials] array is a fresh copy. *)

val cycle_time : Tmg.t -> (Howard.result, Howard.error) result
(** [solve (make_solver tmg)] — one-shot cold analysis. *)

(** {2 CSR-backed cross-check solvers} *)

val karp_unit : t -> Ratio.t option
(** Karp's maximum cycle mean on a unit-token net (the same per-SCC dynamic
    program as {!Karp.of_unit_tmg}, over flat arrays); [None] if acyclic.
    @raise Invalid_argument if any place's marking differs from 1. *)

val lawler_certified :
  t -> (Ratio.t * Tmg.place list * int array, Lawler.error) result
(** Lawler's binary search over flat arrays, mirroring {!Lawler.certified}:
    exact ratio, witness cycle (as place ids of the source net) and integer
    optimality potentials. *)
