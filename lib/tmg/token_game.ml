type t = {
  net : Tmg.t;
  tokens : int array;  (* per place *)
  initial : int array;
  fired : int array;  (* per transition *)
}

let start net =
  let tokens = Array.of_list (List.map (Tmg.tokens net) (Tmg.places net)) in
  {
    net;
    tokens;
    initial = Array.copy tokens;
    fired = Array.make (Tmg.transition_count net) 0;
  }

let marking g = Array.copy g.tokens

let fire_counts g = Array.copy g.fired

let enabled g t = List.for_all (fun p -> g.tokens.(p) > 0) (Tmg.in_places g.net t)

let enabled_transitions g = List.filter (enabled g) (Tmg.transitions g.net)

let fire g t =
  if not (enabled g t) then
    invalid_arg
      (Printf.sprintf "Token_game.fire: %s is not enabled" (Tmg.transition_name g.net t));
  List.iter (fun p -> g.tokens.(p) <- g.tokens.(p) - 1) (Tmg.in_places g.net t);
  List.iter (fun p -> g.tokens.(p) <- g.tokens.(p) + 1) (Tmg.out_places g.net t);
  g.fired.(t) <- g.fired.(t) + 1

let fire_any g =
  match enabled_transitions g with
  | [] -> None
  | t :: _ ->
    fire g t;
    Some t

let run_round g =
  (* Fire each transition exactly once; keep sweeping for newly enabled ones
     until the round completes or no progress is possible. *)
  let pending = Array.make (Tmg.transition_count g.net) true in
  let remaining = ref (Tmg.transition_count g.net) in
  let progress = ref true in
  while !remaining > 0 && !progress do
    progress := false;
    List.iter
      (fun t ->
        if pending.(t) && enabled g t then begin
          fire g t;
          pending.(t) <- false;
          decr remaining;
          progress := true
        end)
      (Tmg.transitions g.net)
  done;
  !remaining = 0

let at_initial_marking g = g.tokens = g.initial
