(** Timed marked graphs (paper §3, Definition 1).

    A marked graph is a Petri net in which every place has exactly one input
    transition and one output transition. That structural property lets a
    place be represented as an {e arc} between its producer and consumer
    transitions, so the whole net is a directed multigraph over transitions:
    vertices are transitions (carrying the timing function [d]), arcs are
    places (carrying the initial marking [M0]). All cycle metrics — cycle
    mean, cycle time, liveness — are computed on this arc representation.

    Delays and markings are non-negative integers (clock cycles and
    tokens). *)

type transition = Ermes_digraph.Digraph.vertex
type place = Ermes_digraph.Digraph.arc

type t

val create : unit -> t

val add_transition : t -> ?name:string -> delay:int -> unit -> transition
(** [add_transition tmg ~delay ()] adds a transition with the given firing
    delay. @raise Invalid_argument if [delay < 0]. *)

val add_place :
  t -> ?name:string -> src:transition -> dst:transition -> tokens:int -> unit -> place
(** [add_place tmg ~src ~dst ~tokens ()] adds a place fed by [src] and feeding
    [dst], holding [tokens] initial tokens.
    @raise Invalid_argument if [tokens < 0]. *)

val transition_count : t -> int
val place_count : t -> int

val delay : t -> transition -> int

val set_delay : t -> transition -> int -> unit
(** [set_delay tmg t d] replaces the firing delay of [t] in place — the
    incremental hook for micro-architecture selection changes.
    @raise Invalid_argument if [d < 0]. *)

val transition_name : t -> transition -> string

val tokens : t -> place -> int
val set_tokens : t -> place -> int -> unit
val place_name : t -> place -> string

val place_src : t -> place -> transition
val place_dst : t -> place -> transition

val rewire_place :
  t -> place -> ?name:string -> src:transition -> dst:transition -> tokens:int -> unit -> unit
(** [rewire_place tmg p ~src ~dst ~tokens ()] moves the existing place [p]
    between new endpoint transitions and replaces its marking (and optionally
    its name), keeping its id — the incremental hook for statement-order
    changes, which rewire a process's chain places without rebuilding the
    net. @raise Invalid_argument if [tokens < 0] or an endpoint is unknown. *)

val in_places : t -> transition -> place list
(** Places feeding a transition, in insertion order. *)

val out_places : t -> transition -> place list
(** Places fed by a transition, in insertion order. *)

val transitions : t -> transition list
val places : t -> place list

val total_tokens : t -> int
(** Sum of the initial marking over all places. *)

val cycle_tokens : t -> place list -> int
(** [cycle_tokens tmg ps] sums the marking over the given places. For a cycle
    this quantity is invariant under any firing sequence (paper §3). *)

val cycle_delay : t -> place list -> int
(** [cycle_delay tmg ps] sums the delays of the consumer transitions of the
    given places. Along a cycle, each transition on the cycle is counted
    exactly once. *)

val cycle_ratio : t -> place list -> Ratio.t option
(** Delay sum over token sum of a cycle: the reciprocal of the cycle mean of
    Definition 3. [None] if the cycle carries no token (its "ratio" is
    infinite: the cycle can never fire — deadlock). *)

val graph : t -> (string * int, string * int) Ermes_digraph.Digraph.t
(** The underlying multigraph: vertex label = (name, delay), arc label =
    (name, tokens). Shared structure — mutating the result is not allowed. *)

val is_strongly_connected : t -> bool

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump (transitions, then places with marking). *)

val to_dot : t -> string
(** Graphviz rendering: boxes for transitions (label: name/delay), arcs for
    places annotated with their marking. *)
