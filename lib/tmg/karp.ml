module Digraph = Ermes_digraph.Digraph
module Scc = Ermes_digraph.Scc

(* Karp on one SCC. [members] are the component's vertices; arcs are the
   component-internal arcs. *)
let karp_scc g members in_scc =
  let n = List.length members in
  (* Dense re-indexing of the component's vertices. *)
  let index = Hashtbl.create n in
  List.iteri (fun i v -> Hashtbl.add index v i) members;
  let arcs =
    List.concat_map
      (fun v ->
        List.filter_map
          (fun a ->
            if in_scc a then
              Some (Hashtbl.find index v, Hashtbl.find index (Digraph.arc_dst g a), Digraph.arc_label g a)
            else None)
          (Digraph.out_arcs g v))
      members
  in
  if arcs = [] then None
  else begin
    (* d.(k).(v) = max weight of a k-arc walk from the root ending at v.
       Walks start anywhere: emulate with a virtual root connected to every
       vertex by a 0-weight arc, i.e. d.(0).(v) = 0 for all v. *)
    let neg = min_int / 4 in
    let d = Array.make_matrix (n + 1) n neg in
    Array.fill d.(0) 0 n 0;
    for k = 1 to n do
      let dk = d.(k) and dk1 = d.(k - 1) in
      List.iter
        (fun (u, v, w) -> if dk1.(u) > neg && dk1.(u) + w > dk.(v) then dk.(v) <- dk1.(u) + w)
        arcs
    done;
    (* lambda* = max_v min_k (d_n(v) - d_k(v)) / (n - k), over v with a
       defined n-arc walk. *)
    let best = ref None in
    for v = 0 to n - 1 do
      if d.(n).(v) > neg then begin
        let vmin = ref None in
        for k = 0 to n - 1 do
          if d.(k).(v) > neg then begin
            let r = Ratio.make (d.(n).(v) - d.(k).(v)) (n - k) in
            match !vmin with
            | None -> vmin := Some r
            | Some r0 -> if Ratio.(r < r0) then vmin := Some r
          end
        done;
        match (!vmin, !best) with
        | Some r, None -> best := Some r
        | Some r, Some b -> if Ratio.(r > b) then best := Some r
        | None, _ -> ()
      end
    done;
    !best
  end

let max_cycle_mean g =
  let scc = Scc.compute g in
  let in_scc a = scc.component.(Digraph.arc_src g a) = scc.component.(Digraph.arc_dst g a) in
  let comps = Scc.components scc in
  Array.fold_left
    (fun best members ->
      match karp_scc g members in_scc with
      | None -> best
      | Some r -> (
        match best with
        | None -> Some r
        | Some b -> Some (Ratio.max r b)))
    None comps

(* Weight each place-arc by the delay of its consumer transition, matching
   the convention of Howard's view. *)
let of_unit_tmg_uncertified tmg =
  let g = Digraph.create () in
  List.iter (fun _ -> ignore (Digraph.add_vertex g ())) (Tmg.transitions tmg);
  List.iter
    (fun p ->
      ignore
        (Digraph.add_arc g ~src:(Tmg.place_src tmg p) ~dst:(Tmg.place_dst tmg p)
           (Tmg.delay tmg (Tmg.place_dst tmg p))))
    (Tmg.places tmg);
  max_cycle_mean g

let of_unit_tmg tmg =
  List.iter
    (fun p ->
      if Tmg.tokens tmg p <> 1 then
        invalid_arg "Karp.of_unit_tmg: every place must hold exactly one token")
    (Tmg.places tmg);
  of_unit_tmg_uncertified tmg

(* Karp itself yields only the value lambda = p/q. The witness cycle and the
   optimality potentials are recovered exactly: an integer longest-path
   relaxation at reduced cost q*w - p (unit tokens) reaches a fixpoint (no
   positive cycle exists at the exact optimum), and every critical cycle
   consists solely of tight arcs [d(src) + cost = d(dst)] — summing the
   fixpoint inequality around the cycle forces equality arc by arc.
   Conversely any cycle of tight arcs sums to reduced cost 0, i.e. attains
   p/q, so any cycle of the tight subgraph is a valid witness. *)
let of_unit_tmg_certified tmg =
  match of_unit_tmg tmg with
  | None -> None
  | Some ratio ->
    let p = Ratio.num ratio and q = Ratio.den ratio in
    let n = Tmg.transition_count tmg in
    let places = Tmg.places tmg in
    let cost pl = (q * Tmg.delay tmg (Tmg.place_dst tmg pl)) - p in
    let out = Array.make n [] in
    List.iter (fun pl -> out.(Tmg.place_src tmg pl) <- pl :: out.(Tmg.place_src tmg pl)) places;
    let d = Array.make n 0 in
    let in_queue = Array.make n true in
    let queue = Queue.create () in
    for u = 0 to n - 1 do
      Queue.add u queue
    done;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      in_queue.(u) <- false;
      List.iter
        (fun pl ->
          let v = Tmg.place_dst tmg pl in
          let nd = d.(u) + cost pl in
          if nd > d.(v) then begin
            d.(v) <- nd;
            if not in_queue.(v) then begin
              in_queue.(v) <- true;
              Queue.add v queue
            end
          end)
        out.(u)
    done;
    let sub = Digraph.create () in
    List.iter (fun _ -> ignore (Digraph.add_vertex sub ())) (Tmg.transitions tmg);
    List.iter
      (fun pl ->
        let u = Tmg.place_src tmg pl and v = Tmg.place_dst tmg pl in
        if d.(u) + cost pl = d.(v) then ignore (Digraph.add_arc sub ~src:u ~dst:v pl))
      places;
    (match Ermes_digraph.Traversal.topological_sort sub with
    | Ok _ ->
      (* The optimum is attained by some cycle and all its arcs are tight. *)
      assert false
    | Error cycle ->
      let arr = Array.of_list cycle in
      let k = Array.length arr in
      let witness =
        List.init k (fun i ->
            match Digraph.find_arc sub ~src:arr.(i) ~dst:arr.((i + 1) mod k) with
            | Some a -> Digraph.arc_label sub a
            | None -> assert false)
      in
      Some (ratio, witness, d))
