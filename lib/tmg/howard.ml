module Scc = Ermes_digraph.Scc

type result = {
  cycle_time : Ratio.t;
  critical_places : Tmg.place list;
  critical_transitions : Tmg.transition list;
  potentials : int array;
  howard_iterations : int;
  cancel_iterations : int;
}

type error = Deadlock of Liveness.dead_cycle | No_cycle

let throughput r = Ratio.inv r.cycle_time

(* Internal compact arc-weighted view of the net: the weight of a place-arc is
   the delay of its consumer transition, so that summing weights along a cycle
   counts each cycle transition exactly once. *)
type view = {
  n : int;
  m : int;
  src : int array;
  dst : int array;
  w : int array;  (* delay of dst transition *)
  t : int array;  (* initial tokens *)
  out_arcs : int list array;
}

let view_of_tmg tmg =
  let n = Tmg.transition_count tmg and m = Tmg.place_count tmg in
  let src = Array.make m 0
  and dst = Array.make m 0
  and w = Array.make m 0
  and t = Array.make m 0 in
  let out_arcs = Array.make n [] in
  List.iter
    (fun p ->
      src.(p) <- Tmg.place_src tmg p;
      dst.(p) <- Tmg.place_dst tmg p;
      w.(p) <- Tmg.delay tmg (dst.(p));
      t.(p) <- Tmg.tokens tmg p)
    (Tmg.places tmg);
  for p = m - 1 downto 0 do
    out_arcs.(src.(p)) <- p :: out_arcs.(src.(p))
  done;
  { n; m; src; dst; w; t; out_arcs }

(* ------------------------------------------------------------------ *)
(* Floating-point Howard policy iteration within one SCC.              *)
(* ------------------------------------------------------------------ *)

type policy_state = {
  policy : int array;  (* arc chosen per vertex; -1 outside the SCC *)
  lambda : float array;  (* per-vertex chain value *)
  x : float array;  (* per-vertex potential *)
}

let eps = 1e-9

(* Evaluate a policy: find its cycles, each cycle's exact ratio, and the
   potentials. Returns the list of cycles as (ratio, vertex list in policy
   order). *)
let evaluate view members st =
  let unvisited = 0 and in_progress = 1 and done_ = 2 in
  let state = Array.make view.n unvisited in
  let cycles = ref [] in
  (* Reverse policy adjacency for potential propagation. *)
  let rev = Array.make view.n [] in
  List.iter
    (fun u ->
      let a = st.policy.(u) in
      rev.(view.dst.(a)) <- u :: rev.(view.dst.(a)))
    members;
  let walk start =
    if state.(start) = unvisited then begin
      (* Follow policy successors, recording the path. *)
      let path = ref [] in
      let u = ref start in
      while state.(!u) = unvisited do
        state.(!u) <- in_progress;
        path := !u :: !path;
        u := view.dst.(st.policy.(!u))
      done;
      if state.(!u) = in_progress then begin
        (* Closed a new cycle at !u: the path suffix from !u is the cycle. *)
        let rec cut acc = function
          | [] -> acc
          | v :: rest -> if v = !u then v :: acc else cut (v :: acc) rest
        in
        let cycle = cut [] !path in
        let wsum = ref 0 and tsum = ref 0 in
        List.iter
          (fun v ->
            let a = st.policy.(v) in
            wsum := !wsum + view.w.(a);
            tsum := !tsum + view.t.(a))
          cycle;
        cycles := (Ratio.make !wsum !tsum, cycle) :: !cycles
      end;
      List.iter (fun v -> state.(v) <- done_) !path
    end
  in
  List.iter walk members;
  (* Potentials: fix each cycle's first vertex at 0, then propagate the value
     equation x(u) = w - lambda*t + x(succ u) backwards over policy arcs. *)
  let queue = Queue.create () in
  let assigned = Array.make view.n false in
  let assign_cycle (ratio, cycle) =
    let l = Ratio.to_float ratio in
    (match cycle with
     | [] -> assert false
     | root :: _ ->
       st.x.(root) <- 0.;
       st.lambda.(root) <- l;
       assigned.(root) <- true;
       (* Walk the cycle backwards: in policy order [v0; v1; ...], the
          predecessor of v0 is the last element. *)
       let arr = Array.of_list cycle in
       let k = Array.length arr in
       for i = k - 1 downto 1 do
         let v = arr.(i) and succ_v = arr.((i + 1) mod k) in
         let a = st.policy.(v) in
         st.x.(v) <-
           (float_of_int view.w.(a) -. (l *. float_of_int view.t.(a))) +. st.x.(succ_v);
         st.lambda.(v) <- l;
         assigned.(v) <- true
       done);
    List.iter (fun v -> Queue.add v queue) cycle
  in
  List.iter assign_cycle !cycles;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let relax u =
      if not assigned.(u) then begin
        let a = st.policy.(u) in
        let l = st.lambda.(v) in
        st.lambda.(u) <- l;
        st.x.(u) <- (float_of_int view.w.(a) -. (l *. float_of_int view.t.(a))) +. st.x.(v);
        assigned.(u) <- true;
        Queue.add u queue
      end
    in
    List.iter relax rev.(v)
  done;
  !cycles

(* One improvement sweep; returns whether the policy changed. *)
let improve view members in_scc st =
  let improved = ref false in
  let consider u a =
    let v = view.dst.(a) in
    if in_scc.(a) then begin
      if st.lambda.(v) > st.lambda.(u) +. eps then begin
        st.policy.(u) <- a;
        st.lambda.(u) <- st.lambda.(v);
        improved := true
      end
      else if st.lambda.(v) > st.lambda.(u) -. eps then begin
        let cost =
          float_of_int view.w.(a) -. (st.lambda.(u) *. float_of_int view.t.(a))
        in
        if cost +. st.x.(v) > st.x.(u) +. eps then begin
          st.policy.(u) <- a;
          improved := true
        end
      end
    end
  in
  List.iter (fun u -> List.iter (consider u) view.out_arcs.(u)) members;
  !improved

let max_iterations = 200

(* Run Howard inside one SCC; returns the best exact policy-cycle ratio found
   together with that cycle (as vertices in policy order) and the number of
   improvement rounds. [warm], when given, seeds the initial policy from a
   previous run (entries are reused only where still a valid internal out-arc)
   and receives the converged policy back. Certification makes the result
   exact for any starting policy; warmth only cuts improvement rounds. *)
let howard_scc ?warm view members in_scc =
  let st =
    {
      policy = Array.make view.n (-1);
      lambda = Array.make view.n neg_infinity;
      x = Array.make view.n 0.;
    }
  in
  List.iter
    (fun u ->
      let reused =
        match warm with
        | Some w when w.(u) >= 0 && w.(u) < view.m && view.src.(w.(u)) = u && in_scc.(w.(u))
          ->
          st.policy.(u) <- w.(u);
          true
        | _ -> false
      in
      if not reused then
        match List.find_opt (fun a -> in_scc.(a)) view.out_arcs.(u) with
        | Some a -> st.policy.(u) <- a
        | None -> assert false)
    members;
  let best = ref None in
  let note_cycles cycles =
    let better (r, c) =
      match !best with
      | None -> best := Some (r, c)
      | Some (r0, _) -> if Ratio.(r > r0) then best := Some (r, c)
    in
    List.iter better cycles
  in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_iterations do
    incr rounds;
    let cycles = evaluate view members st in
    note_cycles cycles;
    if not (improve view members in_scc st) then continue_ := false
  done;
  (match warm with
  | Some w -> List.iter (fun u -> w.(u) <- st.policy.(u)) members
  | None -> ());
  match !best with
  | Some (r, c) -> (r, c, !rounds)
  | None -> assert false

(* ------------------------------------------------------------------ *)
(* Exact certification: cancel positive reduced-cost cycles.           *)
(* ------------------------------------------------------------------ *)

(* Search for a cycle with positive reduced cost q*w - p*t (candidate ratio
   p/q) using Bellman-Ford longest paths from an implicit all-zero source.
   Each relaxation records a parent arc and a path length; a path length
   reaching n proves the parent chain revisits a vertex, and any cycle in the
   parent-pointer graph under longest-path relaxation has strictly positive
   cost. Returns the cycle as arc ids in arc order, or None.

   [in_scc] masks the arcs worth relaxing: every cycle lies inside one
   strongly connected component, so arcs between components can never be on
   a positive cycle — skipping them avoids propagating longest paths through
   the (often large) acyclic part of the net.

   [d] holds the starting potentials and is relaxed in place. Correctness
   does not depend on its contents (a positive cycle forces unbounded
   relaxation from any start; without one the relaxation reaches a
   fixpoint), so a caller may pass the fixpoint of a {e previous}
   certification: when the net barely changed, most arcs still satisfy
   d(v) >= d(u) + cost and the search starts from — often is — the answer.
   Only vertices with a violated out-arc are enqueued; a fully feasible [d]
   certifies in one O(m) scan with no relaxation at all. *)
let find_positive_cycle view in_scc d ratio =
  let p = Ratio.num ratio and q = Ratio.den ratio in
  let cost a = (q * view.w.(a)) - (p * view.t.(a)) in
  let parent = Array.make view.n (-1) in
  let len = Array.make view.n 0 in
  let in_queue = Array.make view.n false in
  let queue = Queue.create () in
  for u = 0 to view.n - 1 do
    let violated a = in_scc.(a) && d.(u) + cost a > d.(view.dst.(a)) in
    if List.exists violated view.out_arcs.(u) then begin
      in_queue.(u) <- true;
      Queue.add u queue
    end
  done;
  let extract_cycle v =
    (* Follow parent arcs from [v] looking for a repeated vertex. Any cycle in
       the parent-pointer graph of longest-path relaxations has strictly
       positive cost, so a found cycle is always a valid answer. A length
       trigger can be spurious (ancestor re-relaxations make stored lengths
       stale), in which case the chain ends at an unrelaxed vertex and we
       resume the search. *)
    let seen = Array.make view.n false in
    let rec chase u =
      if u < 0 || parent.(u) < 0 then None
      else if seen.(u) then Some u
      else begin
        seen.(u) <- true;
        chase view.src.(parent.(u))
      end
    in
    match chase v with
    | None -> None
    | Some entry ->
      let rec collect u acc =
        let a = parent.(u) in
        let s = view.src.(a) in
        if s = entry then a :: acc else collect s (a :: acc)
      in
      Some (collect entry [])
  in
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    in_queue.(u) <- false;
    let relax a =
      let v = view.dst.(a) in
      let nd = d.(u) + cost a in
      if nd > d.(v) then begin
        d.(v) <- nd;
        parent.(v) <- a;
        len.(v) <- len.(u) + 1;
        let detected =
          if len.(v) >= view.n then begin
            match extract_cycle v with
            | Some arcs ->
              found := Some arcs;
              true
            | None ->
              len.(v) <- 0;
              false
          end
          else false
        in
        if (not detected) && not in_queue.(v) then begin
          in_queue.(v) <- true;
          Queue.add v queue
        end
      end
    in
    if !found = None then
      List.iter (fun a -> if in_scc.(a) then relax a) view.out_arcs.(u)
  done;
  !found

let exact_ratio view arcs =
  let wsum = List.fold_left (fun acc a -> acc + view.w.(a)) 0 arcs in
  let tsum = List.fold_left (fun acc a -> acc + view.t.(a)) 0 arcs in
  (* Liveness was established beforehand, so every cycle carries a token. *)
  assert (tsum > 0);
  Ratio.make wsum tsum

let rec certify view in_scc d ratio cycle_arcs rounds =
  match find_positive_cycle view in_scc d ratio with
  | None -> (ratio, cycle_arcs, rounds)
  | Some arcs -> certify view in_scc d (exact_ratio view arcs) arcs (rounds + 1)

(* ------------------------------------------------------------------ *)
(* Reusable solver: cached view / SCC decomposition / liveness verdict and a
   warm-start policy, re-synced against the (mutated) net on each solve.      *)
(* ------------------------------------------------------------------ *)

type solver = {
  stmg : Tmg.t;
  mutable n : int;
  mutable m : int;
  mutable view : view;
  mutable in_scc : bool array;
  mutable cyclic : int list list;  (* member lists of SCCs that contain a cycle *)
  mutable scc_dirty : bool;
  mutable warm : int array;  (* last converged policy; -1 = none *)
  mutable warmed : bool;  (* at least one policy run since the last rebuild *)
  mutable potentials : int array;
      (* last certification fixpoint; warm-starts the next one *)
  mutable liveness : Liveness.dead_cycle option option;
      (* None = unknown; Some v = cached Liveness.find_dead_cycle verdict *)
}

let log_src = Logs.Src.create "ermes.howard" ~doc:"Howard cycle-time solver"

module Log = (val Logs.src_log log_src)
module Obs = Ermes_obs.Obs

let make_solver tmg =
  (* Register the solver's counter set so exporters show it even when a
     counter never fires on the workload at hand. *)
  List.iter
    (fun c -> Obs.incr ~by:0 ("howard." ^ c))
    [
      "solve.cold"; "solve.warm"; "cache.liveness_hit"; "cache.liveness_invalidated";
      "cache.scc_hit"; "scc.recomputed"; "iterations.policy"; "iterations.certify";
    ];
  let view = view_of_tmg tmg in
  {
    stmg = tmg;
    n = view.n;
    m = view.m;
    view;
    in_scc = [||];
    cyclic = [];
    scc_dirty = true;
    warm = Array.make view.n (-1);
    warmed = false;
    potentials = Array.make view.n 0;
    liveness = None;
  }

let compute_scc_state s =
  let view = s.view in
  let scc = Scc.compute (Tmg.graph s.stmg) in
  let in_scc = Array.make view.m false in
  for a = 0 to view.m - 1 do
    in_scc.(a) <- scc.component.(view.src.(a)) = scc.component.(view.dst.(a))
  done;
  (* Only components containing at least one internal arc have cycles. *)
  let cyclic =
    Array.to_list (Scc.components scc)
    |> List.filter (fun members ->
           List.exists
             (fun u -> List.exists (fun a -> in_scc.(a)) view.out_arcs.(u))
             members)
  in
  s.in_scc <- in_scc;
  s.cyclic <- cyclic;
  s.scc_dirty <- false

(* Re-sync the cached view with the live net. Delay edits are absorbed for
   free (the weight array is re-read every time); endpoint rewires mark the
   SCC decomposition dirty and rebuild the out-arc lists from the arc-id
   order, so results never depend on rewiring history; token edits only
   invalidate the cached liveness verdict. A change in transition/place count
   falls back to a full rebuild. *)
let refresh s =
  let n = Tmg.transition_count s.stmg and m = Tmg.place_count s.stmg in
  if n <> s.n || m <> s.m then begin
    if s.liveness <> None then Obs.incr "howard.cache.liveness_invalidated";
    s.view <- view_of_tmg s.stmg;
    s.n <- n;
    s.m <- m;
    s.warm <- Array.make n (-1);
    s.warmed <- false;
    s.potentials <- Array.make n 0;
    s.scc_dirty <- true;
    s.liveness <- None
  end
  else begin
    let view = s.view in
    let structural = ref false and marking = ref false in
    List.iter
      (fun p ->
        let src = Tmg.place_src s.stmg p and dst = Tmg.place_dst s.stmg p in
        if src <> view.src.(p) || dst <> view.dst.(p) then begin
          structural := true;
          view.src.(p) <- src;
          view.dst.(p) <- dst
        end;
        let tk = Tmg.tokens s.stmg p in
        if tk <> view.t.(p) then begin
          marking := true;
          view.t.(p) <- tk
        end;
        view.w.(p) <- Tmg.delay s.stmg dst)
      (Tmg.places s.stmg);
    if !structural then begin
      let out_arcs = Array.make n [] in
      for p = m - 1 downto 0 do
        out_arcs.(view.src.(p)) <- p :: out_arcs.(view.src.(p))
      done;
      s.view <- { view with out_arcs };
      s.scc_dirty <- true
    end;
    if (!structural || !marking) && s.liveness <> None then begin
      Obs.incr "howard.cache.liveness_invalidated";
      s.liveness <- None
    end
  end

let solve s =
  Obs.span "howard.solve" @@ fun () ->
  refresh s;
  Obs.incr (if s.warmed then "howard.solve.warm" else "howard.solve.cold");
  let dead =
    match s.liveness with
    | Some verdict ->
      Obs.incr "howard.cache.liveness_hit";
      verdict
    | None ->
      let verdict = Liveness.find_dead_cycle s.stmg in
      s.liveness <- Some verdict;
      verdict
  in
  match dead with
  | Some dead ->
    Log.debug (fun m ->
        m "solve: dead cycle of %d places" (List.length dead.Liveness.dead_places));
    Error (Deadlock dead)
  | None ->
    if s.scc_dirty then begin
      compute_scc_state s;
      Obs.incr "howard.scc.recomputed"
    end
    else Obs.incr "howard.cache.scc_hit";
    let view = s.view and in_scc = s.in_scc in
    if s.cyclic = [] then Error No_cycle
    else begin
      let best = ref None and iters = ref 0 in
      let run members =
        let r, cyc, rounds = howard_scc ~warm:s.warm view members in_scc in
        iters := !iters + rounds;
        match !best with
        | None -> best := Some (r, cyc)
        | Some (r0, _) -> if Ratio.(r > r0) then best := Some (r, cyc)
      in
      List.iter run s.cyclic;
      s.warmed <- true;
      match !best with
      | None -> assert false
      | Some (ratio, cycle_vertices) ->
        (* Recover the policy arcs of the winning cycle: consecutive cycle
           vertices are joined by the arc the policy chose; we stored only the
           vertices, so rebuild by scanning out-arcs for the successor. That
           is ambiguous with parallel arcs, so instead recompute via the exact
           certification below, seeded with any concrete arc list. *)
        let seed_arcs =
          let arr = Array.of_list cycle_vertices in
          let k = Array.length arr in
          List.init k (fun i ->
              let u = arr.(i) and v = arr.((i + 1) mod k) in
              (* Choose the best (max reduced weight) parallel arc. *)
              let candidates =
                List.filter (fun a -> view.dst.(a) = v) view.out_arcs.(u)
              in
              match candidates with
              | [] -> assert false
              | first :: rest ->
                let better a b =
                  (* Prefer larger w and smaller t; compare w*den - t*num. *)
                  let score a =
                    (view.w.(a) * Ratio.den ratio) - (view.t.(a) * Ratio.num ratio)
                  in
                  if score a >= score b then a else b
                in
                List.fold_left better first rest)
        in
        let seed_ratio = exact_ratio view seed_arcs in
        (* The seed arcs pick, between consecutive cycle vertices, the arc of
           maximal reduced weight, so their ratio dominates the policy
           cycle's. *)
        assert (Ratio.(seed_ratio >= ratio));
        let final_ratio, final_arcs, cancels =
          certify view in_scc s.potentials seed_ratio seed_arcs 0
        in
        (* The certification fixpoint covers intra-SCC arcs only. Extend it
           over every arc (cross-SCC arcs carry no cycle, so the relaxation
           must reach a fixpoint and can never report a positive cycle): the
           resulting potentials are a whole-net optimality witness —
           pot(dst) >= pot(src) + q*w - p*t for every place — that
           [Verify.check] can validate without any solver code. *)
        let everywhere = Array.make view.m true in
        (match find_positive_cycle view everywhere s.potentials final_ratio with
        | None -> ()
        | Some _ -> assert false);
        Obs.incr ~by:!iters "howard.iterations.policy";
        Obs.incr ~by:cancels "howard.iterations.certify";
        Log.debug (fun m ->
            m "solve: cycle time %a after %d policy + %d certify iterations"
              Ratio.pp final_ratio !iters cancels);
        Ok
          {
            cycle_time = final_ratio;
            critical_places = final_arcs;
            critical_transitions = List.map (fun a -> view.dst.(a)) final_arcs;
            potentials = Array.copy s.potentials;
            howard_iterations = !iters;
            cancel_iterations = cancels;
          }
    end

let cycle_time tmg = solve (make_solver tmg)
