module Digraph = Ermes_digraph.Digraph

exception Too_many_cycles of int

(* Johnson's algorithm (1975), extended to multigraphs: the DFS explores arcs
   rather than successor vertices, so two parallel arcs yield two distinct
   cycles. Vertices below the current start vertex are excluded, which is
   Johnson's device for enumerating each cycle exactly once (rooted at its
   minimum vertex). *)
let elementary_cycles ?(limit = 1_000_000) g =
  let n = Digraph.vertex_count g in
  let blocked = Array.make n false in
  let blist = Array.make n [] in
  let cycles = ref [] in
  let count = ref 0 in
  let emit arcs =
    incr count;
    if !count > limit then raise (Too_many_cycles limit);
    cycles := arcs :: !cycles
  in
  for s = 0 to n - 1 do
    (* Reset state for the new start vertex. *)
    for v = s to n - 1 do
      blocked.(v) <- false;
      blist.(v) <- []
    done;
    let rec unblock v =
      if blocked.(v) then begin
        blocked.(v) <- false;
        let pending = blist.(v) in
        blist.(v) <- [];
        List.iter unblock pending
      end
    in
    let rec circuit v path =
      blocked.(v) <- true;
      let found = ref false in
      let explore a =
        let w = Digraph.arc_dst g a in
        if w >= s then begin
          if w = s then begin
            emit (List.rev (a :: path));
            found := true
          end
          else if not blocked.(w) then if circuit w (a :: path) then found := true
        end
      in
      List.iter explore (Digraph.out_arcs g v);
      if !found then unblock v
      else
        List.iter
          (fun a ->
            let w = Digraph.arc_dst g a in
            if w >= s && not (List.mem v blist.(w)) then blist.(w) <- v :: blist.(w))
          (Digraph.out_arcs g v);
      !found
    in
    ignore (circuit s [])
  done;
  List.rev !cycles

let count ?limit g = List.length (elementary_cycles ?limit g)

let max_cycle_ratio_brute tmg =
  (* [Tmg.graph] preserves arc ids, so enumerated arcs are place ids. *)
  let g = Tmg.graph tmg in
  let cycles = elementary_cycles g in
  let ratio places =
    match Tmg.cycle_ratio tmg places with
    | Some r -> r
    | None ->
      invalid_arg "Cycles.max_cycle_ratio_brute: token-free cycle (deadlocked net)"
  in
  List.fold_left
    (fun best places ->
      let r = ratio places in
      match best with
      | None -> Some (r, places)
      | Some (r0, _) -> if Ratio.(r > r0) then Some (r, places) else best)
    None cycles
