module Traversal = Ermes_digraph.Traversal
module Digraph = Ermes_digraph.Digraph

(* Within one round k the recurrence refers to same-round values through
   token-free places, so transitions must be processed in topological order of
   the token-free subgraph — acyclic exactly when the net is live. *)
let zero_token_order tmg =
  let sub = Digraph.create () in
  List.iter (fun _ -> ignore (Digraph.add_vertex sub ())) (Tmg.transitions tmg);
  List.iter
    (fun p ->
      if Tmg.tokens tmg p = 0 then
        ignore (Digraph.add_arc sub ~src:(Tmg.place_src tmg p) ~dst:(Tmg.place_dst tmg p) ()))
    (Tmg.places tmg);
  match Traversal.topological_sort sub with
  | Ok order -> order
  | Error _ -> invalid_arg "Firing: net is not live (token-free cycle)"

let firing_times tmg ~rounds =
  if rounds < 1 then invalid_arg "Firing.firing_times: rounds must be positive";
  let order = zero_token_order tmg in
  let n = Tmg.transition_count tmg in
  let x = Array.make_matrix n rounds 0 in
  for k = 1 to rounds do
    let compute t =
      let ready p =
        let s = Tmg.place_src tmg p in
        let j = k - Tmg.tokens tmg p in
        if j <= 0 then 0 else x.(s).(j - 1)
      in
      let start = List.fold_left (fun acc p -> max acc (ready p)) 0 (Tmg.in_places tmg t) in
      x.(t).(k - 1) <- start + Tmg.delay tmg t
    in
    List.iter compute order
  done;
  x

let measured_cycle_time tmg ~rounds =
  let x = firing_times tmg ~rounds in
  let n = Array.length x in
  if n = 0 then None
  else begin
    (* Find the smallest period c whose increment D is uniform across every
       transition and every round of the second half of the horizon. *)
    let half = rounds / 2 in
    let period_ok c =
      if c < 1 || half + c > rounds then None
      else begin
        let d = x.(0).(rounds - 1) - x.(0).(rounds - 1 - c) in
        let uniform = ref true in
        for t = 0 to n - 1 do
          for k = half - 1 to rounds - 1 - c do
            if x.(t).(k + c) - x.(t).(k) <> d then uniform := false
          done
        done;
        if !uniform then Some (Ratio.make d c) else None
      end
    in
    let rec search c = if half + c > rounds then None else (
      match period_ok c with Some r -> Some r | None -> search (c + 1))
    in
    search 1
  end
