(** Karp's maximum cycle mean algorithm (baseline for the ablation bench).

    Karp (1978) computes the maximum over directed cycles of
    [weight(C) / length(C)] in Θ(V·E) time via the characterization
    λ* = max{v} min{0 ≤ k < n} (Dₙ(v) − Dₖ(v)) / (n − k), where Dₖ(v) is the
    maximum weight of a k-arc walk ending in [v].

    This solves the cycle {e mean} problem, i.e. the cycle-ratio problem with
    one token per place. On a TMG whose places all hold exactly one token it
    agrees with {!Howard.cycle_time}; the test suite uses that agreement, and
    the benchmark harness compares the two implementations' running times. *)

val max_cycle_mean : ('v, int) Ermes_digraph.Digraph.t -> Ratio.t option
(** [max_cycle_mean g] over an arc-weighted digraph; [None] if [g] is acyclic.
    Handles disconnected graphs by running per strongly connected component
    and returning the worst (largest) mean. *)

val of_unit_tmg : Tmg.t -> Ratio.t option
(** [of_unit_tmg tmg] is the cycle time of a TMG in which {e every} place
    holds exactly one token. @raise Invalid_argument if some place does not
    hold exactly one token. *)

val of_unit_tmg_certified : Tmg.t -> (Ratio.t * Tmg.place list * int array) option
(** [of_unit_tmg_certified tmg] is {!of_unit_tmg} extended with a witness
    cycle attaining the mean exactly and per-transition optimality
    potentials ([pot.(dst) >= pot.(src) + q*delay(dst) - p] for every place,
    where the mean is p/q) — a complete certificate for
    [Ermes_verify.Verify.check]. @raise Invalid_argument like
    {!of_unit_tmg}. *)
