(** Liveness of timed marked graphs.

    A marked graph is live (every transition can always eventually fire again)
    iff every directed cycle carries at least one token (Commoner et al.,
    1971). A token-free cycle is exactly a deadlock: none of its transitions
    can ever fire. *)

type dead_cycle = {
  dead_transitions : Tmg.transition list;  (** cycle vertices, in arc order *)
  dead_places : Tmg.place list;
      (** the token-free places connecting consecutive transitions (same
          length, [dead_places.(i)] goes from [dead_transitions.(i)] to the
          next transition, cyclically) *)
}

val find_dead_cycle : Tmg.t -> dead_cycle option
(** [find_dead_cycle tmg] returns a token-free cycle if one exists. *)

val live_ranks : Tmg.t -> (int array, dead_cycle) result
(** [live_ranks tmg] is the certificate form of the liveness verdict:
    [Ok ranks] gives one integer per transition with
    [ranks.(src) < ranks.(dst)] for every token-free place — a topological
    order of the token-free subgraph, i.e. a machine-checkable proof that no
    token-free cycle exists; [Error dead] is a token-free witness cycle. *)

val is_live : Tmg.t -> bool
(** [is_live tmg] iff no token-free cycle exists. *)

val pp_dead_cycle : Tmg.t -> Format.formatter -> dead_cycle -> unit
