(** Earliest-firing (max-plus) execution of a timed marked graph.

    Under the earliest-firing rule, the completion time of the [k]-th firing
    of transition [t] obeys the max-plus recurrence

    {v x_t(k) = d(t) + max over in-places p = (s -> t) of x_s(k - M0(p)) v}

    with [x(j) = 0] for [j <= 0] (initial tokens are available at time 0).
    For a strongly connected live net, [x_t(k) / k] converges to the cycle
    time, and the evolution is eventually periodic: there exist K, c with
    [x(k + c) = x(k) + c * ct] for all [k >= K] (max-plus cyclicity theorem).

    This module executes the recurrence directly. It is an {e independent}
    characterization of the steady-state behaviour, used to validate
    {!Howard.cycle_time} and the discrete-event simulator in the test
    suite. *)

val firing_times : Tmg.t -> rounds:int -> int array array
(** [firing_times tmg ~rounds] is a matrix [x] with [x.(t).(k-1)] the
    completion time of the [k]-th firing of transition [t], for
    [k = 1..rounds].
    @raise Invalid_argument if [rounds < 1] or the net is not live. *)

val measured_cycle_time : Tmg.t -> rounds:int -> Ratio.t option
(** [measured_cycle_time tmg ~rounds] detects the exact asymptotic slope from
    the firing times: it searches for the smallest period [c] such that the
    tail of the schedule satisfies [x(k + c) = x(k) + c * ct] for every
    transition, and returns [ct]. [None] if periodicity has not been reached
    within [rounds] (increase the horizon). *)
