(** Lawler's binary-search algorithm for the maximum cycle ratio.

    The second family of methods in the experimental study the paper cites
    (Dasdan, Irani, Gupta): binary-search the candidate ratio λ and test
    feasibility — a cycle of positive reduced cost [delay − λ·tokens] exists
    iff λ is below the optimum — with a Bellman-Ford longest-path pass per
    probe. The float search narrows to machine precision; the result is then
    made exact by taking the best witness cycle's integer ratio and running
    the same positive-cycle certification Howard's implementation uses.

    Asymptotically O(E·V·log(range)): slower than Howard's policy iteration
    in practice, which is why the paper (and this library) use Howard as the
    production algorithm. Included as a cross-check and for the ablation
    benchmark. *)

type error = Deadlock | No_cycle

val cycle_time : Tmg.t -> (Ratio.t * Tmg.place list, error) result
(** [cycle_time tmg] is the exact maximum cycle ratio (delay sum over token
    sum) and a witness cycle. Agrees with {!Howard.cycle_time} on every live
    net (property-tested). *)

val certified : Tmg.t -> (Ratio.t * Tmg.place list * int array, error) result
(** [certified tmg] is {!cycle_time} extended with per-transition optimality
    potentials: for the returned ratio p/q and every place from [u] to [v],
    [pot.(v) >= pot.(u) + q*delay(v) - p*tokens]. Witness cycle + potentials
    form a complete certificate for [Ermes_verify.Verify.check]. *)
