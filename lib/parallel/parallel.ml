let available () = Domain.recommended_domain_count ()

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Some n
  | Some _ | None -> None

let env_jobs () = Option.bind (Sys.getenv_opt "ERMES_JOBS") parse_jobs

let default_jobs () = match env_jobs () with Some n -> n | None -> 1

exception Worker_failure of int * exn

(* Deterministic fan-out: tasks are claimed from a shared atomic counter and
   every result lands at its input index, so the output order (and any
   exception surfaced — lowest index wins) is independent of worker count and
   scheduling. Exceptions are caught per task together with the raw backtrace
   of their raise point (captured inside the worker domain, where it is still
   accurate); after all domains join, the first failing index re-raises with
   that backtrace re-attached. *)
let run_tasks jobs n task =
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let jobs = max 1 (min jobs n) in
    let obs = Ermes_obs.Obs.enabled () in
    if obs then begin
      Ermes_obs.Obs.incr "parallel.batches";
      Ermes_obs.Obs.incr ~by:n "parallel.tasks"
    end;
    let attempt i =
      try Ok (task i) with e -> Error (e, Printexc.get_raw_backtrace ())
    in
    if jobs = 1 then begin
      for i = 0 to n - 1 do
        results.(i) <- Some (attempt i)
      done;
      if obs then Ermes_obs.Obs.incr ~by:n "parallel.domain0.tasks"
    end
    else begin
      let next = Atomic.make 0 in
      let tally = Array.make jobs 0 in
      let worker slot () =
        let continue_ = ref true in
        while !continue_ do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue_ := false
          else begin
            results.(i) <- Some (attempt i);
            tally.(slot) <- tally.(slot) + 1
          end
        done
      in
      let domains = Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1))) in
      worker 0 ();
      Array.iter Domain.join domains;
      (* Recorded after the join, on the calling domain: the split across
         slots is scheduling-dependent, only the total is deterministic. *)
      if obs then
        Array.iteri
          (fun slot k ->
            Ermes_obs.Obs.incr ~by:k (Printf.sprintf "parallel.domain%d.tasks" slot))
          tally
    end;
    Array.mapi
      (fun i r ->
        match r with
        | Some (Ok v) -> v
        | Some (Error (e, bt)) ->
          Printexc.raise_with_backtrace (Worker_failure (i, e)) bt
        | None -> assert false)
      results
  end

let map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let arr = Array.of_list xs in
  Array.to_list (run_tasks jobs (Array.length arr) (fun i -> f arr.(i)))

let map_array ?jobs f arr =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  run_tasks jobs (Array.length arr) (fun i -> f arr.(i))

let init ?jobs n f =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  run_tasks jobs n f
