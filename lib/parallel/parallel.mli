(** A tiny stdlib-only domain pool (OCaml 5 [Domain] + [Atomic]).

    Fan a list of independent tasks over [jobs] domains. Tasks are claimed
    from a shared atomic counter; every result is written to the slot of its
    input index, so {e result order is deterministic} — identical for any
    [jobs] value and any scheduling — and a parallel run returns bit-for-bit
    what the sequential run would. Only scheduling (hence wall-clock) varies.

    Concurrency contract: tasks must not share mutable state. ERMES callers
    give each task its own [System.copy] (made sequentially, before
    spawning — [Hashtbl]-backed structures are not safe to mutate, or even
    resize-on-read, concurrently).

    [jobs] defaults to [ERMES_JOBS] when set (the CLI's [--jobs] flag
    overrides it), else 1: parallelism is opt-in, sequential semantics are
    the reference. *)

val available : unit -> int
(** [Domain.recommended_domain_count ()] — the host's useful parallelism. *)

val default_jobs : unit -> int
(** The [ERMES_JOBS] environment variable if set to a positive integer,
    else 1. *)

exception Worker_failure of int * exn
(** A task raised: carries the lowest failing input index and its exception.
    Raised from the calling domain after all workers joined, {e with the
    worker's own raw backtrace re-attached}
    ([Printexc.raise_with_backtrace]): when backtrace recording is on,
    [Printexc.get_raw_backtrace] in the handler shows the frames of the
    original raise inside the task, not just the re-raise site. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs], computed on up to [jobs] domains
    (clamped to the task count; [jobs <= 1] runs inline with no domain
    spawned). *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

val init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is [Array.init n f] with [f] fanned out. *)
