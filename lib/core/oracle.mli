(** Exhaustive statement-order search.

    The brute-force baseline the paper argues against ("there are simply too
    many possible ordering combinations to consider"): enumerate every
    combination of per-process get and put orders, analyze each, and report
    the best. Cost is ∏ₚ |in(p)|!·|out(p)|! analyses, so this is only usable
    on small systems — which is exactly its role: ground truth for the
    ordering algorithm in tests and the optimality-gap ablation bench. *)

module System = Ermes_slm.System
module Ratio = Ermes_tmg.Ratio

type result = {
  best_cycle_time : Ratio.t;
  best_system : System.t;  (** a copy carrying one optimal order combination *)
  evaluated : int;  (** total order combinations analyzed *)
  deadlocked : int;  (** how many of them deadlock *)
}

val permutations : 'a list -> 'a list list
(** All permutations, in lexicographic position order. *)

type slice_outcome = {
  slice_best : (Ratio.t * (int list * int list) list) option;
      (** best cycle time in the slice and the winning per-process
          (get order, put order) signature; [None] if everything in the
          slice deadlocked *)
  slice_evaluated : int;
  slice_deadlocked : int;
}
(** The result of one lexicographic slice of the enumeration — everything a
    checkpoint journal needs to skip the slice on resume. *)

val search :
  ?limit:int ->
  ?jobs:int ->
  ?checkpoint:(slice:int -> slice_outcome -> unit) ->
  ?resume:(slice:int -> slice_outcome option) ->
  System.t ->
  result option
(** [search sys] tries every order combination (the input system is not
    modified). [None] if every combination deadlocks. Each combination is
    probed through an incremental analysis session rather than a fresh TMG
    build.
    @param limit refuse (raise [Invalid_argument]) beyond this many
    combinations (default 100_000).
    @param jobs fan the enumeration over up to [jobs] domains (default 1).
    The result — optimum, winning orders, evaluation and deadlock counts —
    is bit-identical for every [jobs] value: the enumeration is split into
    lexicographic slices whose results merge in slice order with strict
    improvement, reproducing the sequential first-found minimum.

    With [checkpoint] or [resume] set, the slicing becomes a fixed function
    of the system alone (independent of [jobs]), each slice gets a stable
    index, and pending slices run in waves so progress persists as the
    campaign goes. [checkpoint] fires once per slice in strict slice order —
    including for slices [resume] answered, so a resumed journal ends up
    identical to an uninterrupted one. [resume] is called sequentially,
    before any domain spawns. *)
