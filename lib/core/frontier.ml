module System = Ermes_slm.System
module Ratio = Ermes_tmg.Ratio

type point = { selection : int array; cycle_time : Ratio.t; area : float }

let select sys point =
  Array.iteri (fun p i -> System.select sys p i) point.selection

(* Per-process choice at scalarization weight theta, latency and area each
   normalized to the process's own [min, max] range. *)
let choose_at sys theta =
  let pick p =
    let impls = System.impls sys p in
    let lats = Array.map (fun (i : System.impl) -> float_of_int i.latency) impls in
    let areas = Array.map (fun (i : System.impl) -> i.area) impls in
    let lo a = Array.fold_left min a.(0) a and hi a = Array.fold_left max a.(0) a in
    let norm lo_ hi_ v = if hi_ > lo_ then (v -. lo_) /. (hi_ -. lo_) else 0. in
    let score i =
      (theta *. norm (lo lats) (hi lats) lats.(i))
      +. ((1. -. theta) *. norm (lo areas) (hi areas) areas.(i))
    in
    let best = ref 0 in
    Array.iteri (fun i _ -> if score i < score !best then best := i) impls;
    System.select sys p !best
  in
  List.iter pick (System.processes sys)

let system_pareto ?(steps = 33) sys =
  if steps < 2 then invalid_arg "Frontier.system_pareto: need at least 2 steps";
  let saved = Ilp_select.selection_vector sys in
  let points = ref [] in
  for k = 0 to steps - 1 do
    (* theta = 1 first so the fastest configuration is always sampled. *)
    let theta = 1. -. (float_of_int k /. float_of_int (steps - 1)) in
    choose_at sys theta;
    match Perf.analyze sys with
    | Ok a ->
      points :=
        {
          selection = Ilp_select.selection_vector sys;
          cycle_time = a.Perf.cycle_time;
          area = System.total_area sys;
        }
        :: !points
    | Error _ -> ()
  done;
  Array.iteri (fun p i -> System.select sys p i) saved;
  (* Non-dominated filter on (cycle time, area). *)
  let all = !points in
  let dominates a b =
    Ratio.(a.cycle_time <= b.cycle_time)
    && a.area <= b.area
    && (Ratio.(a.cycle_time < b.cycle_time) || a.area < b.area)
  in
  let keep =
    List.filter (fun p -> not (List.exists (fun q -> dominates q p) all)) all
  in
  let keep =
    List.sort_uniq
      (fun a b ->
        match Ratio.compare a.cycle_time b.cycle_time with
        | 0 -> compare a.area b.area
        | c -> c)
      keep
  in
  (* Collapse equal cycle times to the cheapest. *)
  let rec dedup = function
    | a :: (b :: _ as rest) when Ratio.equal a.cycle_time b.cycle_time ->
      a :: dedup (List.filter (fun q -> not (Ratio.equal q.cycle_time a.cycle_time)) rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup keep

let fastest = function
  | [] -> invalid_arg "Frontier.fastest: empty frontier"
  | p :: rest ->
    List.fold_left
      (fun best q -> if Ratio.(q.cycle_time < best.cycle_time) then q else best)
      p rest

let at_cycle_time_ratio frontier r =
  let f = fastest frontier in
  let target = r *. Ratio.to_float f.cycle_time in
  match frontier with
  | [] -> invalid_arg "Frontier.at_cycle_time_ratio: empty frontier"
  | p :: rest ->
    List.fold_left
      (fun best q ->
        let d x = Float.abs (Ratio.to_float x.cycle_time -. target) in
        if d q < d best then q else best)
      p rest
