(** System-level performance analysis (paper §3).

    Wraps TMG construction and Howard's algorithm into system-level terms:
    the analysis returns the cycle time (reciprocal of the data-processing
    throughput), and the critical cycle expressed as the processes and
    channels it threads — the objects the ILP-based optimizations and the
    channel reordering act on. *)

module System = Ermes_slm.System
module Ratio = Ermes_tmg.Ratio

type analysis = {
  cycle_time : Ratio.t;
  critical_processes : System.process list;
      (** processes whose computation transition lies on the critical cycle *)
  critical_channels : System.channel list;
      (** channels whose transition lies on the critical cycle *)
  critical_cycle : string list;
      (** the full critical cycle as transition names, in cycle order *)
  critical_delay : int;
      (** total transition delay along the critical cycle *)
  critical_tokens : int;
      (** tokens on the critical cycle; [cycle_time] =
          [critical_delay / critical_tokens] *)
}

type deadlock = {
  dead_processes : System.process list;
  dead_channels : System.channel list;
  dead_cycle : string list;  (** the token-free cycle, as transition names *)
}

type failure =
  | Deadlock of deadlock
  | No_cycle  (** degenerate system with an acyclic TMG *)

val analyze : System.t -> (analysis, failure) result
(** [analyze sys] under the system's current statement orders and selected
    implementations. *)

val of_howard :
  Ermes_slm.To_tmg.mapping ->
  (Ermes_tmg.Howard.result, Ermes_tmg.Howard.error) result ->
  (analysis, failure) result
(** Translate a raw Howard outcome into system-level terms using the mapping
    the TMG was built with. [analyze] is [of_howard m (cycle_time m.tmg)];
    {!Incremental} sessions reuse the translation with a warm solver. *)

val cycle_time_exn : System.t -> Ratio.t
(** @raise Failure on deadlock (with a diagnostic message). For tests and
    quick scripts. *)

val throughput : analysis -> Ratio.t

type slack = Bounded of int | Unbounded

val latency_slack : System.t -> (System.process * slack) list
(** Per-process sensitivity: how many extra cycles each process's
    computation latency can absorb before the system's cycle time increases.
    Processes on the critical cycle have slack 0; a process on no cycle at
    all (impossible in a valid system, where every process chain is a cycle)
    would be [Unbounded]. Computed exactly from the reduced costs
    [den·delay − num·tokens] at the current cycle time: the slack of process
    [p] is −(max over cycles through p of the cycle's reduced cost)/den,
    found with a longest-walk relaxation (no positive cycles exist at the
    exact cycle time, so the relaxation converges).
    @raise Failure on deadlocked or acyclic systems. *)

val channel_slack : System.t -> (System.channel * slack) list
(** The same sensitivity for channel latencies: extra transfer cycles each
    channel can absorb before the cycle time degrades. For a FIFO channel
    the slack applies to its enqueue transfer (the consumer-side read is a
    fixed single cycle).
    @raise Failure on deadlocked or acyclic systems. *)

val pp_slack : Format.formatter -> slack -> unit

val pp_analysis : System.t -> Format.formatter -> analysis -> unit
val pp_failure : System.t -> Format.formatter -> failure -> unit
