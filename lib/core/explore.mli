(** The ERMES design-space exploration loop (paper §5, Fig. 5).

    Iterates {e performance analysis} → {e IP optimization} (ILP selection of
    micro-architectures) → {e channel reordering} until nothing changes:

    - given the current cycle time CT and the target TCT, the performance
      slack is sp = TCT − CT;
    - sp > 0: {e area recovery} — shrink implementations without letting the
      critical cycle overshoot the target;
    - sp ≤ 0: {e timing optimization} — speed up the processes on the
      critical cycle;
    - after every selection change the channel-ordering algorithm re-runs
      (latencies changed, so the optimal orders may have);
    - configurations already visited are discarded (the paper's "constraints
      to discard the configurations already optimized"), which guarantees
      termination and stops the area/timing oscillation once it revisits a
      state.

    The per-iteration (cycle time, area) trace is exactly what the paper's
    Fig. 6 plots. *)

module System = Ermes_slm.System
module Ratio = Ermes_tmg.Ratio

type action =
  | Initial  (** state before the first optimization step *)
  | Timing_optimization
  | Area_recovery
  | Converged  (** the closing iteration that confirmed no further change *)

type step = {
  iteration : int;
  action : action;
  changes : Ilp_select.change list;  (** implementation switches this step *)
  reordered : bool;  (** whether reordering changed any statement order *)
  cycle_time : Ratio.t;
  area : float;  (** total area after the step, mm² *)
}

type trace = {
  tct : int;  (** the target cycle time, cycles *)
  steps : step list;  (** oldest first; head is the [Initial] step *)
  met : bool;  (** final cycle time ≤ target *)
}

type snapshot = {
  snap_step : step;
  selection : int array;
      (** per-process implementation choice {e after} the step *)
  orders : (int list * int list) list;
      (** per-process (get order, put order) after the step *)
}
(** One completed exploration step plus the full post-step system state —
    everything a checkpoint journal needs to reconstitute the run. *)

val run :
  ?max_iterations:int ->
  ?reorder:bool ->
  ?area_budget:float ->
  ?checkpoint:(snapshot -> unit) ->
  ?resume:snapshot list ->
  tct:int ->
  System.t ->
  trace
(** [run ~tct sys] mutates [sys] (selections and statement orders) and
    returns the exploration trace. [reorder] (default true) controls the
    channel-reordering stage — disabling it isolates the ILP contribution
    (ablation). [area_budget] (mm²) activates the paper's dual formulation:
    timing-optimization steps may not push the total area of the critical
    processes beyond the budget minus the area of the others (i.e. the whole
    system stays within budget). [max_iterations] defaults to 16.

    [checkpoint] is called once per completed step — [Initial], each
    optimization move, and the closing [Converged] — with the post-step
    snapshot. [resume] replays snapshots from an earlier (interrupted) run
    of the {e same} system and parameters: each one's state is applied and
    its bookkeeping re-walked without re-running ILP or reordering, then the
    loop continues (or, after a replayed [Converged], returns) — producing a
    trace identical to the uninterrupted run's. [checkpoint] also fires for
    replayed steps, so a resumed journal ends up identical too. Callers are
    responsible for only resuming snapshots that match the system and
    parameters (see [Ermes_runtime.Checkpoint]).
    @raise Failure if an analysis reports deadlock (cannot happen when the
    input orders are deadlock-free: implementation selection never changes
    the marking structure). *)

val reorder_only : System.t -> Ratio.t * Ratio.t
(** Apply just the channel-ordering algorithm, keeping the incumbent order
    when the heuristic would regress; returns (cycle time before, after),
    with after ≤ before always. Mutates the system's orders. This is the
    paper's M1 experiment: reordering alone, no change to the computational
    parts. *)

val final_cycle_time : trace -> Ratio.t
val final_area : trace -> float

val pp_trace : Format.formatter -> trace -> unit
(** One row per iteration: action, cycle time, area — the data behind
    Fig. 6. *)
