(** System-level Pareto-optimal implementations (the Liu–Carloni
    compositional DSE step the paper builds on — its reference [11]).

    The paper's two starting points M1 and M2 are members of "a set of
    Pareto-optimal implementations for the overall system" obtained without
    touching the statement orders. This module reconstructs such a set by a
    scalarization sweep: for each weight θ ∈ [0,1], every process selects the
    implementation minimizing θ·latency + (1−θ)·area (each normalized to the
    process's own range), the system is analyzed under its current orders,
    and the non-dominated (cycle time, area) points are kept. θ = 1 yields
    the all-fastest configuration (the paper's M1). *)

module System = Ermes_slm.System
module Ratio = Ermes_tmg.Ratio

type point = {
  selection : int array;  (** implementation index per process *)
  cycle_time : Ratio.t;
  area : float;  (** mm² *)
}

val system_pareto : ?steps:int -> System.t -> point list
(** [system_pareto sys] sweeps [steps] (default 33) scalarization weights and
    returns the non-dominated configurations sorted by increasing cycle
    time. The system's selections are restored before returning; statement
    orders are never touched. Configurations whose analysis deadlocks are
    skipped (cannot happen when the current orders are deadlock-free). *)

val select : System.t -> point -> unit
(** Install a frontier point's selections. *)

val fastest : point list -> point
(** Minimum cycle time (the paper's M1). @raise Invalid_argument on []. *)

val at_cycle_time_ratio : point list -> float -> point
(** [at_cycle_time_ratio frontier r]: the point whose cycle time is closest
    to [r] × the fastest point's cycle time — used to pick an M2 analog at
    the paper's M2/M1 ratio (3597/1906 ≈ 1.89). *)
