module System = Ermes_slm.System
module Ratio = Ermes_tmg.Ratio

let log_src = Logs.Src.create "ermes.explore" ~doc:"ERMES design-space exploration"

module Log = (val Logs.src_log log_src)
module Obs = Ermes_obs.Obs

type action = Initial | Timing_optimization | Area_recovery | Converged

type step = {
  iteration : int;
  action : action;
  changes : Ilp_select.change list;
  reordered : bool;
  cycle_time : Ratio.t;
  area : float;
}

type trace = { tct : int; steps : step list; met : bool }

type snapshot = {
  snap_step : step;
  selection : int array;
  orders : (int list * int list) list;
}

let session_analyze_exn session =
  match Incremental.analyze session with
  | Ok a -> a
  | Error f ->
    Format.kasprintf failwith "Explore: %a"
      (Perf.pp_failure (Incremental.system session)) f

let orders_signature sys =
  List.map (fun p -> (System.get_order sys p, System.put_order sys p)) (System.processes sys)

let restore_orders sys signature =
  List.iteri
    (fun p (gets, puts) ->
      System.set_get_order sys p gets;
      System.set_put_order sys p puts)
    signature

(* Reorder monotonically; returns whether the orders changed plus the fresh
   analysis. *)
let reorder_if_better ~session sys =
  let saved = orders_signature sys in
  match Order.apply_safe ~session sys with
  | Order.Applied _ -> (orders_signature sys <> saved, session_analyze_exn session)
  | Order.Kept_incumbent _ -> (false, session_analyze_exn session)

let run ?(max_iterations = 16) ?(reorder = true) ?area_budget ?checkpoint ?(resume = [])
    ~tct sys =
  (* One incremental session carries every analysis of the exploration loop:
     selection changes are delay edits, reorderings are chain rewires, and
     each Howard run warm-starts from the previous policy. *)
  let session = Incremental.create sys in
  List.iter (Obs.incr ~by:0)
    [ "explore.moves.area_recovery"; "explore.moves.timing_optimization"; "explore.reorders" ];
  let visited = Hashtbl.create 16 in
  let remember () = Hashtbl.replace visited (Ilp_select.selection_vector sys) () in
  remember ();
  (* Track the best configuration seen, to restore at convergence: among
     states meeting the target the cheapest, otherwise the fastest. The
     caller passes the analysis it already holds — re-analyzing here would
     repeat the work it just did. *)
  let best = ref None in
  let note_best ~ct ~area =
    let snapshot () =
      (Ilp_select.selection_vector sys, orders_signature sys, ct, area)
    in
    let meets ct = Ratio.(ct <= Ratio.of_int tct) in
    let better (_, _, ct0, area0) =
      match (meets ct0, meets ct) with
      | true, true -> area < area0
      | true, false -> false
      | false, true -> true
      | false, false -> Ratio.(ct < ct0)
    in
    match !best with
    | None -> best := Some (snapshot ())
    | Some b -> if better b then best := Some (snapshot ())
  in
  let restore_best () =
    match !best with
    | None -> ()
    | Some (selection, orders, _, _) ->
      List.iteri (fun p i -> System.select sys p i) (Array.to_list selection);
      restore_orders sys orders
  in
  let steps = ref [] in
  (* Every pushed step goes through the checkpoint hook with the full
     post-step state, so a journal can reconstitute the exploration. *)
  let push step =
    steps := step :: !steps;
    match checkpoint with
    | None -> ()
    | Some f ->
      f
        {
          snap_step = step;
          selection = Ilp_select.selection_vector sys;
          orders = orders_signature sys;
        }
  in
  let finished = ref false in
  let iteration = ref 0 in
  let current =
    match resume with
    | [] ->
      let a0 = session_analyze_exn session in
      note_best ~ct:a0.Perf.cycle_time ~area:(System.total_area sys);
      push
        {
          iteration = 0;
          action = Initial;
          changes = [];
          reordered = false;
          cycle_time = a0.Perf.cycle_time;
          area = System.total_area sys;
        };
      ref a0
    | snaps ->
      (* Replay: apply each snapshot's post-step state, then re-walk the
         bookkeeping (visited set, best tracking, step list, checkpoint) in
         the order the original run performed it. One warm analysis at the
         end re-derives the state the loop (or the [met] verdict) needs —
         the analysis is a deterministic function of the system, so the
         continuation is identical to the uninterrupted run's. *)
      List.iter
        (fun s ->
          Array.iteri (fun p i -> System.select sys p i) s.selection;
          restore_orders sys s.orders;
          remember ();
          (match s.snap_step.action with
          | Converged -> finished := true
          | Initial | Timing_optimization | Area_recovery ->
            note_best ~ct:s.snap_step.cycle_time ~area:s.snap_step.area;
            iteration := s.snap_step.iteration);
          push s.snap_step)
        snaps;
      ref (session_analyze_exn session)
  in
  while (not !finished) && !iteration < max_iterations do
    Obs.span "explore.iteration" @@ fun () ->
    incr iteration;
    let a = !current in
    let ct = a.Perf.cycle_time in
    let slack = Ratio.sub (Ratio.of_int tct) ct in
    let action, changes =
      if Ratio.(slack > Ratio.zero) then begin
        (* Integer slack floor keeps the knapsack budget conservative. *)
        let s = Ratio.num slack / Ratio.den slack in
        (Area_recovery,
         Ilp_select.area_recovery ~tct sys ~critical:a.Perf.critical_processes ~slack:s)
      end
      else begin
        let needed = a.Perf.critical_delay - (tct * a.Perf.critical_tokens) in
        (* The dual formulation: the critical processes may spend at most the
           system budget minus what everyone else already occupies. *)
        let critical_budget =
          Option.map
            (fun total ->
              let critical_area =
                List.fold_left
                  (fun acc p -> acc +. System.area sys p)
                  0. a.Perf.critical_processes
              in
              total -. (System.total_area sys -. critical_area))
            area_budget
        in
        (Timing_optimization,
         Ilp_select.timing_optimization ?area_budget:critical_budget
           ~needed_gain:needed sys ~critical:a.Perf.critical_processes)
      end
    in
    (* Discard configurations already optimized: re-proposing a visited
       selection vector means the exploration has closed a loop. *)
    let proposed () =
      let v = Ilp_select.selection_vector sys in
      List.iter (fun (c : Ilp_select.change) -> v.(c.process) <- c.to_impl) changes;
      v
    in
    if changes = [] || Hashtbl.mem visited (proposed ()) then begin
      finished := true;
      (* Close on the best configuration encountered, not on wherever the
         oscillation happened to stop. *)
      restore_best ();
      let a' = session_analyze_exn session in
      current := a';
      push
        {
          iteration = !iteration;
          action = Converged;
          changes = [];
          reordered = false;
          cycle_time = a'.Perf.cycle_time;
          area = System.total_area sys;
        }
    end
    else begin
      Log.debug (fun m ->
          m "iter %d: %s proposes %d changes"
            !iteration
            (match action with
             | Area_recovery -> "area-recovery"
             | Timing_optimization -> "timing-optimization"
             | Initial | Converged -> "?")
            (List.length changes));
      Obs.incr
        (match action with
        | Area_recovery -> "explore.moves.area_recovery"
        | Timing_optimization | Initial | Converged -> "explore.moves.timing_optimization");
      Ilp_select.apply_changes sys changes;
      remember ();
      let after_changes = session_analyze_exn session in
      let reordered, a' =
        if reorder then reorder_if_better ~session sys else (false, after_changes)
      in
      if reordered then Obs.incr "explore.reorders";
      current := a';
      note_best ~ct:a'.Perf.cycle_time ~area:(System.total_area sys);
      Log.info (fun m ->
          m "iter %d: CT=%s area=%.4f%s" !iteration
            (Ratio.to_string a'.Perf.cycle_time)
            (System.total_area sys)
            (if reordered then " (reordered)" else ""));
      push
        {
          iteration = !iteration;
          action;
          changes;
          reordered;
          cycle_time = a'.Perf.cycle_time;
          area = System.total_area sys;
        }
    end
  done;
  if not !finished then begin
    (* Iteration budget exhausted mid-oscillation: still ship (and record)
       the best configuration seen. *)
    restore_best ();
    let a' = session_analyze_exn session in
    current := a';
    push
      {
        iteration = !iteration + 1;
        action = Converged;
        changes = [];
        reordered = false;
        cycle_time = a'.Perf.cycle_time;
        area = System.total_area sys;
      }
  end;
  let final_ct = !current.Perf.cycle_time in
  { tct; steps = List.rev !steps; met = Ratio.(final_ct <= Ratio.of_int tct) }

let reorder_only sys =
  let session = Incremental.create sys in
  let before = (session_analyze_exn session).Perf.cycle_time in
  let _, a = reorder_if_better ~session sys in
  (before, a.Perf.cycle_time)

let last_step trace =
  match List.rev trace.steps with s :: _ -> s | [] -> assert false

let final_cycle_time trace = (last_step trace).cycle_time
let final_area trace = (last_step trace).area

let action_name = function
  | Initial -> "initial"
  | Timing_optimization -> "timing-optimization"
  | Area_recovery -> "area-recovery"
  | Converged -> "converged"

let pp_trace ppf trace =
  Format.fprintf ppf "@[<v>target cycle time: %d@," trace.tct;
  List.iter
    (fun s ->
      Format.fprintf ppf "iter %d: %-19s CT=%-12s area=%.4f (%d changes%s)@,"
        s.iteration (action_name s.action)
        (Ratio.to_string s.cycle_time)
        s.area (List.length s.changes)
        (if s.reordered then ", reordered" else ""))
    trace.steps;
  Format.fprintf ppf "target %s@]" (if trace.met then "met" else "missed")
