module System = Ermes_slm.System
module To_tmg = Ermes_slm.To_tmg
module Tmg = Ermes_tmg.Tmg
module Csr = Ermes_tmg.Csr
module Ratio = Ermes_tmg.Ratio
module Obs = Ermes_obs.Obs

let log_src = Logs.Src.create "ermes.incremental" ~doc:"incremental analysis sessions"

module Log = (val Logs.src_log log_src)

type stats = {
  mutable analyses : int;
  mutable probes : int;
  mutable delay_edits : int;
  mutable rethreads : int;
  mutable marking_edits : int;
  mutable rebuilds : int;
}

type t = {
  sys : System.t;
  mutable mapping : To_tmg.mapping;
  mutable solver : Csr.solver;
  lat : int array;
  gets : System.channel list array;
  puts : System.channel list array;
  kinds : System.channel_kind array;
  stats : stats;
}

let snapshot sess =
  let sys = sess.sys in
  for p = 0 to System.process_count sys - 1 do
    sess.lat.(p) <- System.latency sys p;
    sess.gets.(p) <- System.get_order sys p;
    sess.puts.(p) <- System.put_order sys p
  done;
  for c = 0 to System.channel_count sys - 1 do
    sess.kinds.(c) <- System.channel_kind sys c
  done

let create sys =
  List.iter
    (fun c -> Obs.incr ~by:0 ("incremental." ^ c))
    [ "analyses"; "probes"; "delay_edits"; "rethreads"; "marking_edits"; "rebuilds" ];
  let np = System.process_count sys and nc = System.channel_count sys in
  let mapping = To_tmg.build sys in
  let sess =
    {
      sys;
      mapping;
      solver = Csr.make_solver mapping.To_tmg.tmg;
      lat = Array.make (max np 1) 0;
      gets = Array.make (max np 1) [];
      puts = Array.make (max np 1) [];
      kinds = Array.make (max nc 1) System.Rendezvous;
      stats =
        {
          analyses = 0;
          probes = 0;
          delay_edits = 0;
          rethreads = 0;
          marking_edits = 0;
          rebuilds = 0;
        };
    }
  in
  snapshot sess;
  sess

let system sess = sess.sys
let stats sess = sess.stats
let mapping sess = sess.mapping

(* Diff the cached shadow state against the live system and translate each
   difference into the cheapest TMG edit: a selection change is a delay
   write per compute instance, an order change rewires one process chain, a
   depth-only change on a buffered channel is a token write per credit place
   (when {!To_tmg.absorb_depth_edit} proves the gadget structure unchanged —
   always, at unit rates), and a [Handshake] hold change is a delay write
   per ack transition. Anything that alters the transition set or the
   gadget wiring (kind changes, rate changes, unabsorbable depth changes)
   falls back to a full rebuild. Callers mutate the System freely between
   analyses; no notification protocol is needed. *)
let sync sess =
  let sys = sess.sys in
  let structural = ref false in
  let depth_edits = ref [] and hold_edits = ref [] in
  for c = System.channel_count sys - 1 downto 0 do
    let k = System.channel_kind sys c in
    if k <> sess.kinds.(c) then
      match (sess.kinds.(c), k) with
      | System.Fifo _, System.Fifo _ -> depth_edits := c :: !depth_edits
      | ( System.Multi_rate { produce; consume; depth = _ },
          System.Multi_rate { produce = p'; consume = c'; depth = _ } )
        when produce = p' && consume = c' ->
        depth_edits := c :: !depth_edits
      | System.Handshake _, System.Handshake { hold } ->
        hold_edits := (c, hold) :: !hold_edits
      | _, _ -> structural := true
  done;
  (* Depth edits are attempted before deciding on a rebuild: an edit the
     gadget cannot absorb (a credit-place source moves at true multi-rates)
     escalates to the same full rebuild a kind change causes. *)
  if not !structural then begin
    let m = sess.mapping in
    List.iter
      (fun c ->
        if To_tmg.absorb_depth_edit m sys c then begin
          sess.kinds.(c) <- System.channel_kind sys c;
          sess.stats.marking_edits <- sess.stats.marking_edits + 1;
          Obs.incr "incremental.marking_edits";
          Log.debug (fun f ->
              f "sync: depth of %s changed (marking edit)" (System.channel_name sys c))
        end
        else structural := true)
      !depth_edits
  end;
  if !structural then begin
    Log.debug (fun m -> m "sync: channel transition set changed, full rebuild");
    sess.mapping <- To_tmg.build sys;
    sess.solver <- Csr.make_solver sess.mapping.To_tmg.tmg;
    sess.stats.rebuilds <- sess.stats.rebuilds + 1;
    Obs.incr "incremental.rebuilds";
    snapshot sess
  end
  else begin
    let m = sess.mapping in
    List.iter
      (fun (c, hold) ->
        Array.iter
          (fun a -> Tmg.set_delay m.To_tmg.tmg a hold)
          m.To_tmg.channel_ack.(c);
        sess.kinds.(c) <- System.Handshake { hold };
        sess.stats.delay_edits <- sess.stats.delay_edits + 1;
        Obs.incr "incremental.delay_edits";
        Log.debug (fun f ->
            f "sync: hold of %s -> %d (delay edit)" (System.channel_name sys c) hold))
      !hold_edits;
    for p = 0 to System.process_count sys - 1 do
      let l = System.latency sys p in
      if l <> sess.lat.(p) then begin
        Array.iter
          (fun t -> Tmg.set_delay m.To_tmg.tmg t l)
          m.To_tmg.compute_transition.(p);
        sess.lat.(p) <- l;
        sess.stats.delay_edits <- sess.stats.delay_edits + 1;
        Obs.incr "incremental.delay_edits"
      end;
      let g = System.get_order sys p and q = System.put_order sys p in
      if g <> sess.gets.(p) || q <> sess.puts.(p) then begin
        To_tmg.rethread m sys p;
        sess.gets.(p) <- g;
        sess.puts.(p) <- q;
        sess.stats.rethreads <- sess.stats.rethreads + 1;
        Obs.incr "incremental.rethreads"
      end
    done
  end

let analyze sess =
  sync sess;
  sess.stats.analyses <- sess.stats.analyses + 1;
  Obs.incr "incremental.analyses";
  Perf.of_howard sess.mapping (Csr.solve sess.solver)

type certified = {
  outcome : (Perf.analysis, Perf.failure) result;
  certificate : Ermes_verify.Verify.t;
  checked : (unit, Ermes_verify.Verify.violation) result;
}

let analyze_certified sess =
  sync sess;
  sess.stats.analyses <- sess.stats.analyses + 1;
  Obs.incr "incremental.analyses";
  Obs.incr "incremental.certified";
  let raw = Csr.solve sess.solver in
  let tmg = sess.mapping.To_tmg.tmg in
  let certificate = Ermes_verify.Verify.of_howard tmg raw in
  {
    outcome = Perf.of_howard sess.mapping raw;
    certificate;
    checked = Ermes_verify.Verify.check tmg certificate;
  }

let analyze_exn sess =
  match analyze sess with
  | Ok a -> a
  | Error f ->
    Format.kasprintf failwith "Incremental.analyze_exn: %a"
      (Perf.pp_failure sess.sys) f

let cycle_time_opt sess =
  match analyze sess with Ok a -> Some a.Perf.cycle_time | Error _ -> None

type probe =
  | Slow_process of System.process * int
  | Jitter_channel of System.channel * int

(* Transient delay overrides with Fault.apply's accumulate-then-clamp
   semantics: deltas on the same component sum; a process latency clamps at
   0, a channel latency at 1. Only the producer-side (entry) transition
   carries the channel latency, for rendezvous and FIFO channels alike. *)
let probe sess probes =
  sync sess;
  let sys = sess.sys and m = sess.mapping in
  let tmg = m.To_tmg.tmg in
  let deltas = Hashtbl.create 8 in
  let bump key d =
    Hashtbl.replace deltas key (d + Option.value ~default:0 (Hashtbl.find_opt deltas key))
  in
  List.iter
    (function
      | Slow_process (p, d) -> bump (`P p) d
      | Jitter_channel (c, d) -> bump (`C c) d)
    probes;
  let saved =
    Hashtbl.fold
      (fun key delta acc ->
        let ts, faulted =
          match key with
          | `P p ->
            (m.To_tmg.compute_transition.(p), max 0 (System.latency sys p + delta))
          | `C c ->
            (m.To_tmg.channel_entry.(c), max 1 (System.channel_latency sys c + delta))
        in
        Array.fold_left
          (fun acc t ->
            let before = Tmg.delay tmg t in
            Tmg.set_delay tmg t faulted;
            (t, before) :: acc)
          acc ts)
      deltas []
  in
  sess.stats.analyses <- sess.stats.analyses + 1;
  sess.stats.probes <- sess.stats.probes + 1;
  Obs.incr "incremental.analyses";
  Obs.incr "incremental.probes";
  let outcome = Csr.solve sess.solver in
  List.iter (fun (t, before) -> Tmg.set_delay tmg t before) saved;
  Perf.of_howard m outcome
