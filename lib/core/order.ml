module System = Ermes_slm.System
module Traversal = Ermes_digraph.Traversal
module Ratio = Ermes_tmg.Ratio
module Parallel = Ermes_parallel.Parallel

let log_src = Logs.Src.create "ermes.order" ~doc:"channel ordering"

module Log = (val Logs.src_log log_src)
module Obs = Ermes_obs.Obs

type labels = {
  head_weight : int array;
  head_timestamp : int array;
  tail_weight : int array;
  tail_timestamp : int array;
  back_channel : bool array;
}

let fresh_labels sys =
  let nc = System.channel_count sys in
  let g = System.graph sys in
  {
    head_weight = Array.make nc 0;
    head_timestamp = Array.make nc 0;
    tail_weight = Array.make nc 0;
    tail_timestamp = Array.make nc 0;
    back_channel = Traversal.back_arcs ~roots:(System.sources sys) g;
  }

(* Shared queue-driven sweep. [arcs_out] lists the channels to label when a
   process is dequeued (its puts in forward order, its gets in backward
   order); [arc_far_end] is the process at the other end; [gate_in] counts
   the labeled-before-enqueue requirement (non-back in-arcs forward, non-back
   out-arcs backward); [weight_of] computes the paper's weight formula at the
   dequeued process. *)
let sweep sys ~roots ~arcs_out ~arc_far_end ~gate_count ~weight_of ~set_label =
  let np = System.process_count sys in
  let remaining = Array.init np gate_count in
  let queue = Queue.create () in
  let enqueued = Array.make np false in
  let enqueue p =
    if not enqueued.(p) then begin
      enqueued.(p) <- true;
      Queue.add p queue
    end
  in
  List.iter enqueue roots;
  let timestamp = ref 1 in
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    let w = weight_of x in
    let visit c =
      set_label c w !timestamp;
      incr timestamp;
      let y = arc_far_end c in
      remaining.(y) <- remaining.(y) - 1;
      if remaining.(y) = 0 then enqueue y
    in
    List.iter visit (arcs_out x)
  done

let count_non_back back chans =
  List.length (List.filter (fun c -> not back.(c)) chans)

let run_forward sys lb =
  let labeled = Array.make (System.channel_count sys) false in
  let weight_of x =
    let max_in =
      List.fold_left
        (fun acc c -> if labeled.(c) then max acc lb.head_weight.(c) else acc)
        0 (System.get_order sys x)
    in
    let sum_out =
      List.fold_left
        (fun acc c -> acc + System.put_side_latency sys c)
        0 (System.put_order sys x)
    in
    max_in + sum_out + System.latency sys x
  in
  sweep sys
    ~roots:(System.sources sys)
    ~arcs_out:(fun x -> System.put_order sys x)
    ~arc_far_end:(fun c -> System.channel_dst sys c)
    ~gate_count:(fun p -> count_non_back lb.back_channel (System.get_order sys p))
    ~weight_of
    ~set_label:(fun c w ts ->
      labeled.(c) <- true;
      lb.head_weight.(c) <- w;
      lb.head_timestamp.(c) <- ts)

let run_backward sys lb =
  let labeled = Array.make (System.channel_count sys) false in
  let weight_of x =
    let max_out =
      List.fold_left
        (fun acc c -> if labeled.(c) then max acc lb.tail_weight.(c) else acc)
        0 (System.put_order sys x)
    in
    let sum_in =
      List.fold_left
        (fun acc c -> acc + System.get_side_latency sys c)
        0 (System.get_order sys x)
    in
    max_out + sum_in + System.latency sys x
  in
  (* Incoming channels are visited by increasing forward head timestamp. *)
  let in_by_forward_ts x =
    List.sort
      (fun a b -> compare lb.head_timestamp.(a) lb.head_timestamp.(b))
      (System.get_order sys x)
  in
  sweep sys ~roots:(System.sinks sys) ~arcs_out:in_by_forward_ts
    ~arc_far_end:(fun c -> System.channel_src sys c)
    ~gate_count:(fun p -> count_non_back lb.back_channel (System.put_order sys p))
    ~weight_of
    ~set_label:(fun c w ts ->
      labeled.(c) <- true;
      lb.tail_weight.(c) <- w;
      lb.tail_timestamp.(c) <- ts)

let forward_labels sys =
  let lb = fresh_labels sys in
  run_forward sys lb;
  lb

let compute_labels sys =
  let lb = fresh_labels sys in
  run_forward sys lb;
  run_backward sys lb;
  lb

let final_ordering sys lb =
  let by_gets a b =
    match compare lb.head_weight.(a) lb.head_weight.(b) with
    | 0 -> compare lb.head_timestamp.(a) lb.head_timestamp.(b)
    | c -> c
  in
  let by_puts a b =
    match compare lb.tail_weight.(b) lb.tail_weight.(a) with
    | 0 -> compare lb.tail_timestamp.(a) lb.tail_timestamp.(b)
    | c -> c
  in
  List.iter
    (fun p ->
      System.set_get_order sys p (List.sort by_gets (System.get_order sys p));
      System.set_put_order sys p (List.sort by_puts (System.put_order sys p)))
    (System.processes sys)

let apply sys =
  let lb = compute_labels sys in
  final_ordering sys lb;
  lb

let ordered_copy sys =
  let sys' = System.copy sys in
  ignore (apply sys');
  sys'

type safe_outcome =
  | Applied of labels
  | Kept_incumbent of [ `Would_deadlock | `Would_regress ]

(* The first-iteration dependence graph over channels: a process must
   complete every channel of its first phase before any channel of its last
   phase (gets before puts, or the reverse for [Puts_first] processes).
   Statement orders only add edges {e within} a phase, so if every process's
   gets and puts are sorted by one topological linearization of this graph,
   every dependence points forward in the linearization and no cyclic wait
   can form. The graph is acyclic exactly when every process-graph cycle
   contains a [Puts_first] process — the modelling invariant of
   {!Ermes_slm.System.phase_order}. *)
let channel_dependences sys =
  let module Digraph = Ermes_digraph.Digraph in
  let d = Digraph.create () in
  List.iter (fun _ -> ignore (Digraph.add_vertex d ())) (System.channels sys);
  List.iter
    (fun p ->
      (* Channel-id order, not current statement order: the dependence graph
         (and with it the conservative linearization) must be canonical for a
         topology, independent of whatever orders happen to be installed. *)
      let sorted order = List.sort compare (order sys p) in
      let firsts, seconds =
        match System.phase sys p with
        | System.Gets_first -> (sorted System.get_order, sorted System.put_order)
        | System.Puts_first -> (sorted System.put_order, sorted System.get_order)
      in
      List.iter
        (fun a -> List.iter (fun b -> ignore (Digraph.add_arc d ~src:a ~dst:b ())) seconds)
        firsts)
    (System.processes sys);
  d

let install_by_rank sys rank =
  let by a b = compare rank.(a) rank.(b) in
  List.iter
    (fun p ->
      System.set_get_order sys p (List.sort by (System.get_order sys p));
      System.set_put_order sys p (List.sort by (System.put_order sys p)))
    (System.processes sys)

let conservative sys =
  let d = channel_dependences sys in
  let rank = Array.make (System.channel_count sys) 0 in
  (match Traversal.topological_sort d with
   | Ok order -> List.iteri (fun i c -> rank.(c) <- i) order
   | Error cycle ->
     invalid_arg
       (Printf.sprintf
          "Order.conservative: no deadlock-free order exists — channel dependence \
           cycle through [%s]; some feedback loop lacks a Puts_first process"
          (String.concat " "
             (List.map (System.channel_name sys) cycle))));
  install_by_rank sys rank

(* Sequential first-improvement greedy: sweep all adjacent swaps, keep each
   strict improvement immediately, repeat until a full sweep finds none.
   Every probe goes through one incremental session on [sys] (an order
   change is a chain rewire plus a warm Howard run, not a TMG rebuild). *)
let local_search_greedy ~max_evaluations sys =
  let session = Incremental.create sys in
  let best_ct =
    ref
      (match Incremental.cycle_time_opt session with
       | Some ct -> ct
       | None -> failwith "Order.local_search: the incumbent orders deadlock")
  in
  let evals = ref 0 in
  (* Try one adjacent swap at position i of [get] (or [put]) order of p;
     keep it only on strict improvement. *)
  let try_swap get_order set_order p i =
    if !evals >= max_evaluations then false
    else begin
      let order = Array.of_list (get_order sys p) in
      if i + 1 >= Array.length order then false
      else begin
        let t = order.(i) in
        order.(i) <- order.(i + 1);
        order.(i + 1) <- t;
        set_order sys p (Array.to_list order);
        incr evals;
        match Incremental.cycle_time_opt session with
        | Some ct when Ratio.(ct < !best_ct) ->
          best_ct := ct;
          true
        | Some _ | None ->
          (* Roll back. *)
          let t = order.(i) in
          order.(i) <- order.(i + 1);
          order.(i + 1) <- t;
          set_order sys p (Array.to_list order);
          false
      end
    end
  in
  let improved = ref true in
  while !improved && !evals < max_evaluations do
    improved := false;
    List.iter
      (fun p ->
        let sweep get_order set_order =
          let k = List.length (get_order sys p) in
          for i = 0 to k - 2 do
            if try_swap get_order set_order p i then improved := true
          done
        in
        sweep System.get_order System.set_get_order;
        sweep System.put_order System.set_put_order)
      (System.processes sys)
  done;
  !evals

(* Batch variant for multicore: each iteration evaluates the whole neighbor
   set (fanned over [jobs] domains, each on its own copy + session) and
   applies the first improving swap by neighbor index. Deterministic in
   [jobs] — only wall-clock changes — but the improvement trajectory may
   visit different (equally monotone) intermediate orders than the greedy
   sweep, which accepts swaps mid-sweep. *)
let local_search_batch ~max_evaluations ~jobs sys =
  let master = Incremental.create sys in
  let best_ct =
    ref
      (match Incremental.cycle_time_opt master with
       | Some ct -> ct
       | None -> failwith "Order.local_search: the incumbent orders deadlock")
  in
  let accessors = function
    | `Get -> (System.get_order, System.set_get_order)
    | `Put -> (System.put_order, System.set_put_order)
  in
  let swap_at w (p, which, i) =
    let get, set = accessors which in
    let order = Array.of_list (get w p) in
    let t = order.(i) in
    order.(i) <- order.(i + 1);
    order.(i + 1) <- t;
    set w p (Array.to_list order)
  in
  let evals = ref 0 in
  let improved = ref true in
  while !improved && !evals < max_evaluations do
    improved := false;
    let neighbors =
      List.concat_map
        (fun p ->
          let gets = List.length (System.get_order sys p) in
          let puts = List.length (System.put_order sys p) in
          List.init (max 0 (gets - 1)) (fun i -> (p, `Get, i))
          @ List.init (max 0 (puts - 1)) (fun i -> (p, `Put, i)))
        (System.processes sys)
    in
    let budget = max_evaluations - !evals in
    let neighbors = List.filteri (fun i _ -> i < budget) neighbors in
    if neighbors <> [] then begin
      let arr = Array.of_list neighbors in
      let n = Array.length arr in
      let nchunks = max 1 (min jobs n) in
      let tasks =
        List.init nchunks (fun k ->
            let lo = n * k / nchunks and hi = n * (k + 1) / nchunks in
            (Array.sub arr lo (hi - lo), System.copy sys))
      in
      let run (chunk, w) =
        let session = Incremental.create w in
        Array.to_list
          (Array.map
             (fun neighbor ->
               swap_at w neighbor;
               let ct = Incremental.cycle_time_opt session in
               swap_at w neighbor;
               ct)
             chunk)
      in
      let results = List.concat (Parallel.map ~jobs run tasks) in
      evals := !evals + List.length results;
      let chosen = ref None in
      List.iteri
        (fun idx ct ->
          if !chosen = None then
            match ct with
            | Some ct when Ratio.(ct < !best_ct) -> chosen := Some (idx, ct)
            | Some _ | None -> ())
        results;
      match !chosen with
      | Some (idx, ct) ->
        swap_at sys arr.(idx);
        best_ct := ct;
        improved := true
      | None -> ()
    end
  done;
  !evals

let local_search ?(max_evaluations = 10_000) ?jobs sys =
  Obs.span "order.local_search" @@ fun () ->
  let evals =
    match jobs with
    | None -> local_search_greedy ~max_evaluations sys
    | Some jobs -> local_search_batch ~max_evaluations ~jobs sys
  in
  Obs.incr ~by:evals "order.local_search.evals";
  evals

(* splitmix64, kept local so the core library stays free of global random
   state. *)
let random_stream seed =
  let state = ref (Int64.of_int seed) in
  fun bound ->
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_int (Int64.shift_right_logical z 2) mod bound

(* Greedy linear extension of the channel dependence graph, prioritized by
   Algorithm 1's labels: among the ready channels, always emit the one with
   the smallest (head weight - tail weight) — small head weight means "this
   get ends a short upstream path, serve it early", large tail weight means
   "this put starts a long downstream path, issue it early" — with the
   forward timestamp as the paper's tie-break. Every statement order sorted
   by a linear extension is deadlock-free, so this variant trades none of
   the safety of {!conservative} while recovering most of the optimization
   of {!apply}; on the paper's motivating example it produces exactly the
   optimal orders. *)
let apply_constrained sys =
  let module Digraph = Ermes_digraph.Digraph in
  let lb = compute_labels sys in
  let d = channel_dependences sys in
  let n = Digraph.vertex_count d in
  let indeg = Array.make n 0 in
  Digraph.iter_arcs (fun a -> let v = Digraph.arc_dst d a in indeg.(v) <- indeg.(v) + 1) d;
  let key c = (lb.head_weight.(c) - lb.tail_weight.(c), lb.head_timestamp.(c), c) in
  let module Ready = Set.Make (struct
    type t = int * int * int

    let compare = compare
  end) in
  let ready = ref Ready.empty in
  Array.iteri (fun c deg -> if deg = 0 then ready := Ready.add (key c) !ready) indeg;
  let rank = Array.make n 0 in
  let emitted = ref 0 in
  while not (Ready.is_empty !ready) do
    let ((_, _, c) as k) = Ready.min_elt !ready in
    ready := Ready.remove k !ready;
    rank.(c) <- !emitted;
    incr emitted;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then ready := Ready.add (key w) !ready)
      (Digraph.succs d c)
  done;
  if !emitted < n then
    invalid_arg "Order.apply_constrained: no deadlock-free order exists (dependence cycle)";
  install_by_rank sys rank;
  lb

let apply_safe ?session sys =
  Obs.span "order.apply_safe" @@ fun () ->
  let session =
    match session with
    | Some s ->
      if Incremental.system s != sys then
        invalid_arg "Order.apply_safe: session bound to a different system";
      s
    | None -> Incremental.create sys
  in
  let probe () = Incremental.cycle_time_opt session in
  let incumbent_ct =
    match probe () with
    | Some ct -> ct
    | None -> failwith "Order.apply_safe: the incumbent orders deadlock"
  in
  let saved =
    List.map (fun p -> (System.get_order sys p, System.put_order sys p)) (System.processes sys)
  in
  let restore () =
    List.iteri
      (fun p (gets, puts) ->
        System.set_get_order sys p gets;
        System.set_put_order sys p puts)
      saved
  in
  (* Try the faithful algorithm first, the dependence-constrained variant
     second, and keep whichever live result is fastest (never worse than the
     incumbent). *)
  let lb = apply sys in
  let unconstrained =
    match probe () with
    | Some ct -> Some (ct, List.map (fun p -> (System.get_order sys p, System.put_order sys p)) (System.processes sys))
    | None -> None
  in
  restore ();
  let lb2 = apply_constrained sys in
  let constrained_ct =
    match probe () with
    | Some ct -> ct
    | None -> assert false (* linear extensions are always live *)
  in
  let use_unconstrained =
    match unconstrained with
    | Some (ct, _) -> Ermes_tmg.Ratio.(ct <= constrained_ct)
    | None -> false
  in
  let best_ct, best_lb =
    if use_unconstrained then begin
      (match unconstrained with
       | Some (ct, orders) ->
         List.iteri
           (fun p (gets, puts) ->
             System.set_get_order sys p gets;
             System.set_put_order sys p puts)
           orders;
         (ct, lb)
       | None -> assert false)
    end
    else (constrained_ct, lb2)
  in
  if Ermes_tmg.Ratio.(best_ct <= incumbent_ct) then begin
    Log.debug (fun m ->
        m "apply_safe: installed %s order (CT %s -> %s)"
          (if use_unconstrained then "unconstrained" else "constrained")
          (Ermes_tmg.Ratio.to_string incumbent_ct)
          (Ermes_tmg.Ratio.to_string best_ct));
    Applied best_lb
  end
  else begin
    Log.debug (fun m ->
        m "apply_safe: kept incumbent (best candidate %s > %s)"
          (Ermes_tmg.Ratio.to_string best_ct)
          (Ermes_tmg.Ratio.to_string incumbent_ct));
    restore ();
    Kept_incumbent `Would_regress
  end

let conservative_random ~seed sys =
  let module Digraph = Ermes_digraph.Digraph in
  let d = channel_dependences sys in
  let n = Digraph.vertex_count d in
  let draw = random_stream seed in
  (* Random linear extension: repeatedly pick a uniformly random ready
     vertex. Any linear extension of the dependence graph yields a
     deadlock-free order, so this samples the space of "plausible designer
     orders" without the near-certain deadlock of a fully random order. *)
  let indeg = Array.make n 0 in
  Digraph.iter_arcs (fun a -> let v = Digraph.arc_dst d a in indeg.(v) <- indeg.(v) + 1) d;
  let ready = ref (List.filter (fun v -> indeg.(v) = 0) (Digraph.vertices d)) in
  let rank = Array.make n 0 in
  let emitted = ref 0 in
  while !ready <> [] do
    let k = draw (List.length !ready) in
    let v = List.nth !ready k in
    ready := List.filteri (fun i _ -> i <> k) !ready;
    rank.(v) <- !emitted;
    incr emitted;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then ready := w :: !ready)
      (Digraph.succs d v)
  done;
  if !emitted < n then
    invalid_arg
      "Order.conservative_random: no deadlock-free order exists (dependence cycle)";
  install_by_rank sys rank
