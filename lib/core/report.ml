module System = Ermes_slm.System
module Ratio = Ermes_tmg.Ratio

let markdown ?(frontier = false) sys =
  match Perf.analyze sys with
  | Error f -> Error (Format.asprintf "%a" (Perf.pp_failure sys) f)
  | Ok a ->
    let buf = Buffer.create 2048 in
    let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    pf "# Design report: %s\n\n" (System.name sys);
    pf "- processes: %d (%d sources, %d sinks)\n" (System.process_count sys)
      (List.length (System.sources sys))
      (List.length (System.sinks sys));
    pf "- channels: %d\n" (System.channel_count sys);
    pf "- statement-order combinations: %.3g\n\n" (System.order_combinations sys);
    pf "## Performance\n\n";
    pf "- cycle time: **%s** cycles per iteration\n" (Ratio.to_string a.Perf.cycle_time);
    pf "- throughput: %s iterations per cycle\n" (Ratio.to_string (Perf.throughput a));
    pf "- critical cycle: %s\n\n" (String.concat " -> " a.Perf.critical_cycle);
    pf "## Latency slack\n\n";
    pf "Extra cycles each element can absorb before the cycle time degrades.\n\n";
    pf "| process | latency | slack |\n|---|---|---|\n";
    List.iter
      (fun (p, s) ->
        pf "| %s | %d | %s |\n" (System.process_name sys p) (System.latency sys p)
          (Format.asprintf "%a" Perf.pp_slack s))
      (Perf.latency_slack sys);
    pf "\n| channel | latency | kind | slack |\n|---|---|---|---|\n";
    List.iter
      (fun (c, s) ->
        pf "| %s | %d | %s | %s |\n" (System.channel_name sys c)
          (System.channel_latency sys c)
          (System.string_of_kind (System.channel_kind sys c))
          (Format.asprintf "%a" Perf.pp_slack s))
      (Perf.channel_slack sys);
    pf "\n## Area\n\n";
    pf "Total: **%.4f mm2**\n\n" (System.total_area sys);
    pf "| process | implementation | latency | area (mm2) |\n|---|---|---|---|\n";
    List.iter
      (fun p ->
        let impls = System.impls sys p in
        let i = System.selected sys p in
        pf "| %s | %s (%d/%d) | %d | %.4f |\n" (System.process_name sys p)
          impls.(i).System.tag (i + 1) (Array.length impls) (System.latency sys p)
          (System.area sys p))
      (System.processes sys);
    if frontier then begin
      pf "\n## System-level Pareto frontier\n\n";
      pf "| cycle time | area (mm2) |\n|---|---|\n";
      List.iter
        (fun (pt : Frontier.point) ->
          pf "| %s | %.4f |\n" (Ratio.to_string pt.Frontier.cycle_time) pt.Frontier.area)
        (Frontier.system_pareto sys)
    end;
    Ok (Buffer.contents buf)
