(** Human-readable design reports.

    Bundles the analyses a designer acts on — cycle time, throughput, the
    critical cycle, per-process and per-channel latency slack, the area
    breakdown and (optionally) the system-level Pareto frontier — into one
    Markdown document. This is the artifact the [ermes report] subcommand
    emits. *)

module System = Ermes_slm.System

val markdown : ?frontier:bool -> System.t -> (string, string) result
(** [markdown sys] renders the report for the system's current orders and
    selections. [frontier] (default false) appends the system-level Pareto
    frontier (costs one analysis per scalarization sample). [Error] carries
    the deadlock/degenerate-system diagnostic instead of a report. *)
