module System = Ermes_slm.System
module Ratio = Ermes_tmg.Ratio
module Obs = Ermes_obs.Obs

type step = { channel : System.channel; new_depth : int; cycle_time : Ratio.t }

type result = {
  steps : step list;
  slots_added : int;
  final_cycle_time : Ratio.t;
  met : bool;
}

let analyze_exn session =
  match Incremental.analyze session with
  | Ok a -> a
  | Error f ->
    Format.kasprintf failwith "Buffer_opt: %a"
      (Perf.pp_failure (Incremental.system session)) f

(* The optimizer only resizes unit-rate channels: [Rendezvous <-> Fifo] is a
   plain depth ladder (0, 1, 2, ...). [Multi_rate] depths interact with the
   rate unfolding and [Handshake] channels have no buffer at all, so both are
   excluded from the candidate set rather than silently retyped. *)
let sizable sys c =
  match System.channel_kind sys c with
  | System.Rendezvous | System.Fifo _ -> true
  | System.Multi_rate _ | System.Handshake _ -> false

let depth_of sys c =
  match System.channel_kind sys c with
  | System.Rendezvous -> 0
  | System.Fifo d -> d
  | System.Multi_rate _ | System.Handshake _ ->
    invalid_arg "Buffer_opt.depth_of: channel is not sizable"

let set_depth sys c d =
  System.set_channel_kind sys c (if d = 0 then System.Rendezvous else System.Fifo d)

(* One session serves every candidate evaluation: once a channel is a FIFO,
   probing depth d+1 and restoring d are single token writes on its credit
   place; only the first 0 → 1 buffering of a channel (Rendezvous → Fifo, a
   new transition pair) costs a rebuild. *)
let size ?(max_slots = 64) ~tct sys =
  Obs.span "buffer_opt.size" @@ fun () ->
  let session = Incremental.create sys in
  let steps = ref [] in
  let slots = ref 0 in
  let current = ref (analyze_exn session) in
  let target = Ratio.of_int tct in
  let continue_ = ref true in
  while
    !continue_ && !slots < max_slots && Ratio.(!current.Perf.cycle_time > target)
  do
    (* Candidate channels: those on the critical cycle (buffering elsewhere
       cannot move the maximum cycle ratio). *)
    let base_ct = !current.Perf.cycle_time in
    let best = ref None in
    List.iter
      (fun c ->
        let d = depth_of sys c in
        set_depth sys c (d + 1);
        (match Incremental.analyze session with
         | Ok a ->
           if Ratio.(a.Perf.cycle_time < base_ct) then begin
             match !best with
             | Some (_, _, ct) when Ratio.(ct <= a.Perf.cycle_time) -> ()
             | _ -> best := Some (c, d + 1, a.Perf.cycle_time)
           end
         | Error _ -> ());
        set_depth sys c d)
      (List.filter (sizable sys) !current.Perf.critical_channels);
    match !best with
    | None -> continue_ := false
    | Some (c, d, ct) ->
      set_depth sys c d;
      incr slots;
      steps := { channel = c; new_depth = d; cycle_time = ct } :: !steps;
      current := analyze_exn session
  done;
  let final = !current.Perf.cycle_time in
  {
    steps = List.rev !steps;
    slots_added = !slots;
    final_cycle_time = final;
    met = Ratio.(final <= target);
  }
