(** ILP formulations for implementation selection (paper §5).

    Binary variables x₍p,i₎ select implementation [i] for process [p]
    (exactly one per process). The {e latency gain} l₍p,i₎ is the current
    latency of [p] minus the latency of [i]; the {e area gain} a₍p,i₎
    likewise for area. Both problems are solved exactly with the
    branch-and-bound ILP solver (the paper used GLPK).

    - {e Area recovery} (performance slack sp > 0): maximize the total area
      gain over {e all} processes, subject to the cumulative latency loss of
      the processes on the critical cycle not exceeding the slack. Latencies
      of off-cycle processes are unconstrained — a new critical cycle may
      emerge, which the next iteration of the methodology detects and
      repairs (exactly the oscillation visible in the paper's Fig. 6).
    - {e Timing optimization} (sp ≤ 0): maximize the cumulative latency gain
      of the processes on the critical cycle, with the total area gain as an
      epsilon-weighted tie-break (the cheapest among the fastest), optionally
      under an area budget (the dual formulation the paper mentions and
      omits). *)

module System = Ermes_slm.System

type change = {
  process : System.process;
  from_impl : int;
  to_impl : int;
}

val apply_changes : System.t -> change list -> unit

val selection_vector : System.t -> int array
(** Current implementation index per process. *)

val area_recovery :
  ?tct:int -> System.t -> critical:System.process list -> slack:int -> change list
(** Changes with positive total area gain, or [[]] when no recovery is
    possible. When [tct] is given, candidate implementations whose own
    process cycle (implementation latency plus the latencies of every
    channel the process touches — an unconditional lower bound on the system
    cycle time through that process) already exceeds [tct] are excluded:
    selecting one could never keep the target, only hand the violation to a
    later iteration. The currently selected implementation is always kept as
    a candidate so the formulation stays feasible.
    @raise Invalid_argument if [slack < 0]. *)

val timing_optimization :
  ?area_budget:float ->
  ?needed_gain:int ->
  System.t ->
  critical:System.process list ->
  change list
(** When [needed_gain] is given (the latency gain that brings the critical
    cycle exactly to the target: critical delay − TCT·tokens), selects the
    {e minimum-area} configuration achieving at least that gain — the
    literal reading of the paper's "minimize the difference CT − TCT".
    When it is absent or unreachable, falls back to maximizing the
    cumulative latency gain (fastest possible). Returns [[]] when the
    critical processes are already at their fastest implementations.
    [area_budget] bounds the total area of the critical processes after the
    change (the dual formulation the paper mentions). *)
