(** Incremental performance analysis sessions.

    A session binds one {!System.t} to one long-lived TMG + Howard solver and
    makes repeated throughput probes cheap: instead of rebuilding the net and
    solving from a cold start (what {!Perf.analyze} does), each {!analyze}
    {e diffs} the system against a cached shadow of its mutable state and
    applies the cheapest sufficient TMG edit —

    - a micro-architecture {e selection} change becomes one transition-delay
      write ({!Ermes_tmg.Tmg.set_delay});
    - a statement {e order} change rewires that process's chain places in
      place ({!Ermes_slm.To_tmg.rethread});
    - a FIFO {e depth} change ([Fifo d → Fifo d']) becomes one token write on
      the channel's credit place ({!Ermes_tmg.Tmg.set_tokens});
    - a [Rendezvous ↔ Fifo] {e kind} change alters the transition set and
      falls back to a full rebuild —

    then re-runs Howard warm-started from the previous converged policy
    ({!Ermes_tmg.Howard.solve}). Results are equivalent to a fresh
    [Perf.analyze]: identical cycle time (it is exact in both paths, thanks
    to certification), identical deadlock verdicts and dead cycles, and a
    critical cycle that is genuinely critical — though possibly a different
    representative when several cycles tie.

    Callers mutate the System freely between analyses; there is no
    notification protocol. The session assumes it is the only writer of the
    {e TMG} (the System remains shared); sessions are not thread-safe — give
    each domain its own [System.copy] and session. *)

module System = Ermes_slm.System
module Ratio = Ermes_tmg.Ratio

type t

val create : System.t -> t
(** Builds the TMG and solver once. Cost: one [To_tmg.build] (no solve). *)

val system : t -> System.t

val analyze : t -> (Perf.analysis, Perf.failure) result
(** Sync with the system's current state, then solve warm. *)

type certified = {
  outcome : (Perf.analysis, Perf.failure) result;
  certificate : Ermes_verify.Verify.t;
      (** the proof object the warm solve produced, in raw TMG terms *)
  checked : (unit, Ermes_verify.Verify.violation) result;
      (** verdict of the independent checker on [certificate] *)
}

val analyze_certified : t -> certified
(** Like {!analyze}, but every verdict — live cycle time, deadlock, or
    acyclic — carries a certificate that has been run through
    {!Ermes_verify.Verify.check}. Warm starts, cached policies and
    incremental edits make no difference to the proof obligations: the
    certificate is checked against the raw current net. Costs one extra
    O(E) pass over the net per call; the plain {!analyze} stays available
    for tight probe loops. *)

val analyze_exn : t -> Perf.analysis
(** @raise Failure on deadlock or an acyclic net. *)

val cycle_time_opt : t -> Ratio.t option
(** [None] on deadlock or an acyclic net — the shape order-search probes
    want. *)

type probe =
  | Slow_process of System.process * int  (** latency delta, clamped at 0 *)
  | Jitter_channel of System.channel * int  (** latency delta, clamped at 1 *)

val probe : t -> probe list -> (Perf.analysis, Perf.failure) result
(** [probe sess probes] analyzes the system as if the given transient latency
    deltas were applied, then restores the net. Deltas follow
    [Fault.apply]'s accumulate-then-clamp semantics, so
    [probe sess [Slow_process (p, d)]] equals
    [Perf.analyze (Fault.apply sys [Process_slowdown {process = p; delta = d}])]
    without constructing the faulted copy. *)

type stats = {
  mutable analyses : int;  (** solver runs (including probes) *)
  mutable probes : int;  (** transient {!probe} solves *)
  mutable delay_edits : int;  (** selection changes absorbed as delay writes *)
  mutable rethreads : int;  (** order changes absorbed as chain rewires *)
  mutable marking_edits : int;  (** FIFO depth changes absorbed as token writes *)
  mutable rebuilds : int;  (** [Rendezvous ↔ Fifo] changes: full TMG rebuilds *)
}

val stats : t -> stats

val mapping : t -> Ermes_slm.To_tmg.mapping
(** The live mapping (replaced on rebuild) — for tests and diagnostics. *)
