(** The channel-ordering algorithm (paper §4, Algorithm 1).

    Reorders the [put] and [get] statements of every process to maximize
    system throughput while avoiding deadlock, in O(E log E):

    - {e Forward labeling} — a queue-driven traversal from the sources; when a
      process is dequeued, each of its outgoing channels (visited in the
      current put order) has its {e head} labeled with a weight — the maximum
      incoming head weight plus the total latency of the process's outgoing
      channels plus the process latency — and a global timestamp. A process
      is enqueued once its last incoming channel is labeled.
    - {e Backward labeling} — symmetric, from the sinks, labeling channel
      {e tails}; a process's incoming channels are visited in increasing
      order of the forward timestamps on their heads.
    - {e Final ordering} — each process's gets are sorted by ascending head
      weight and its puts by descending tail weight, ties broken by ascending
      timestamp (the tie-break that rules out deadlocks in symmetric
      structures).

    Intuition: a put that starts a long downstream path should happen early;
    a get that ends a short upstream path should be served early.

    {b Feedback loops.} The queue-driven traversal terminates only on acyclic
    graphs, so channels classified as DFS back arcs (from the sources) do not
    gate the enqueueing in either direction; they still receive labels when
    their endpoint process is dequeued and participate normally in the final
    sort. With every feedback loop broken by a [Puts_first] process (see
    {!Ermes_slm.System.phase_order}) the resulting orders remain
    deadlock-free in all our tests. *)

module System = Ermes_slm.System

type labels = {
  head_weight : int array;  (** per channel *)
  head_timestamp : int array;
  tail_weight : int array;
  tail_timestamp : int array;
  back_channel : bool array;  (** channels classified as DFS back arcs *)
}

val forward_labels : System.t -> labels
(** Forward labeling only ([tail_*] arrays are zeroed) — exposed for tests
    against the paper's worked example. *)

val compute_labels : System.t -> labels
(** Forward then backward labeling, without touching the system. *)

val apply : System.t -> labels
(** The full algorithm: computes labels and installs the final statement
    orders into the system. Returns the labels for inspection.

    {b Unchecked}: on systems with feedback loops the back-arc adaptation is
    a heuristic and the resulting order can occasionally deadlock or be
    slower than the incumbent (on DAG-structured systems no deadlock has
    ever been observed, matching the paper's claim). Production flows use
    {!apply_safe}. *)

val apply_constrained : System.t -> labels
(** The dependence-constrained variant: computes Algorithm 1's labels, then
    emits the channels as a greedy linear extension of the channel
    dependence graph prioritized by (head weight − tail weight), forward
    timestamp as tie-break, and sorts every statement order by that
    linearization. {e Always} deadlock-free (any linear extension is), and
    reproduces the paper's optimal orders on the motivating example.
    @raise Invalid_argument when no deadlock-free order exists. *)

type safe_outcome =
  | Applied of labels  (** new orders installed; cycle time ≤ incumbent *)
  | Kept_incumbent of [ `Would_deadlock | `Would_regress ]

val apply_safe : ?session:Incremental.t -> System.t -> safe_outcome
(** Runs both {!apply} and {!apply_constrained}, verifies each
    incrementally, and installs the fastest live result — unless the
    incumbent order is faster still, in which case it is restored. This
    makes the optimization monotone. All three verification probes go
    through one {!Incremental} session (order changes are chain rewires on
    a single TMG, with warm-started Howard runs).
    @param session reuse a caller-held session on [sys] instead of creating
    one ([Invalid_argument] if it is bound to a different system).
    @raise Failure if the {e incumbent} orders already deadlock (order the
    system with {!conservative} first). *)

val ordered_copy : System.t -> System.t
(** [apply] on a copy, leaving the input untouched. *)

val conservative : System.t -> unit
(** The baseline ordering the paper's input implementations use: a
    {e provably} deadlock-free order, blind to latencies — so it "may
    introduce unnecessary serialization of processes that could run in
    parallel", the gap the optimizing algorithm closes. Construction: build
    the first-iteration channel dependence graph (each process's first-phase
    channels precede its second-phase channels), topologically linearize it,
    and sort every statement order by the linearization; then every wait
    dependence points forward in the linearization, so no cyclic wait
    exists. @raise Invalid_argument when no deadlock-free order exists (a
    feedback loop without a [Puts_first] process). *)

val local_search : ?max_evaluations:int -> ?jobs:int -> System.t -> int
(** Beyond the paper: an anytime first-improvement local search over
    statement orders. Repeatedly tries swapping adjacent statements in every
    process's get and put orders, keeping a swap when the analyzed cycle
    time strictly improves (deadlocking or slower neighbours are rolled
    back), until a full sweep finds no improvement or [max_evaluations]
    analyses (default 10,000) have been spent. Monotone by construction;
    typically run after {!apply_safe} to close its remaining optimality gap
    (the ablation bench quantifies this). Every probe runs through one
    incremental session on the input system. Returns the number of analyses
    performed.

    Without [jobs] the search is the sequential greedy sweep (the
    reference semantics). With [jobs] (any value, including 1) it switches
    to steepest-batch mode: each iteration evaluates {e all} adjacent-swap
    neighbors — fanned over up to [jobs] domains, each probing its own
    [System.copy] through its own session — and applies the first
    improving swap by neighbor index. Batch mode is deterministic in
    [jobs] ([~jobs:4] lands exactly where [~jobs:1] does), but may take a
    different (equally monotone) improvement path than the greedy sweep.
    @raise Failure if the incumbent orders deadlock. *)

val conservative_random : seed:int -> System.t -> unit
(** A {e random} deadlock-free order: sorts every statement order by a
    uniformly random linear extension of the channel dependence graph. This
    samples the space of plausible designer orders — live but latency-blind —
    and is the baseline for measuring how much serialization the optimizing
    algorithm removes (a fully random order deadlocks almost surely on
    realistic topologies). Deterministic in [seed].
    @raise Invalid_argument when no deadlock-free order exists. *)
