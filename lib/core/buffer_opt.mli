(** Automatic FIFO sizing (beyond the paper).

    The related-work section contrasts the paper's reordering with
    dataflow-style designs whose "communication channels [are] based on
    FIFOs, which must be carefully sized". This module automates that
    sizing: starting from the current channel kinds, it greedily buffers the
    channel that improves the cycle time most per added slot until the
    target cycle time is met (or no buffering helps), so a designer can
    trade storage for throughput only where it pays.

    Each step considers the channels on the current critical cycle, tries
    depth +1 on each (a rendezvous channel becomes a depth-1 FIFO), and
    keeps the best strict improvement. Monotone; terminates at the target,
    at [max_slots], or when buffering stops helping (a critical cycle made
    only of data dependences cannot be bought off with storage). *)

module System = Ermes_slm.System
module Ratio = Ermes_tmg.Ratio

type step = {
  channel : System.channel;
  new_depth : int;
  cycle_time : Ratio.t;  (** after this step *)
}

type result = {
  steps : step list;  (** in application order *)
  slots_added : int;
  final_cycle_time : Ratio.t;
  met : bool;
}

val size : ?max_slots:int -> tct:int -> System.t -> result
(** [size ~tct sys] mutates the channel kinds of [sys]. [max_slots] (default
    64) bounds the total added storage.
    @raise Failure if the system deadlocks under its current orders (FIFO
    insertion never introduces deadlock, so a live start stays live). *)
