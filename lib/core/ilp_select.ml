module System = Ermes_slm.System
module Lp = Ermes_ilp.Lp
module Branch_bound = Ermes_ilp.Branch_bound

type change = { process : System.process; from_impl : int; to_impl : int }

let apply_changes sys changes =
  List.iter (fun c -> System.select sys c.process c.to_impl) changes

let selection_vector sys =
  Array.of_list (List.map (System.selected sys) (System.processes sys))

(* Variable layout: one block of binaries per participating process, one per
   implementation. *)
type layout = {
  nvars : int;
  blocks : (System.process * (int * int) array) list;
      (* process, (impl index, var id) per admissible implementation *)
}

(* [admissible sys p i] filters the candidate implementations; the current
   selection is always admitted so the one-of-each rows stay feasible. *)
let make_layout ?(admissible = fun _ _ _ -> true) sys participants =
  let next = ref 0 in
  let blocks =
    List.map
      (fun p ->
        let k = Array.length (System.impls sys p) in
        let keep =
          List.filter
            (fun i -> i = System.selected sys p || admissible sys p i)
            (List.init k Fun.id)
        in
        let vars =
          Array.of_list
            (List.map (fun i -> let v = !next in incr next; (i, v)) keep)
        in
        (p, vars))
      participants
  in
  { nvars = !next; blocks }

let one_of_each layout =
  List.map
    (fun (_, vars) ->
      Lp.row (Array.to_list (Array.map (fun (_, v) -> (v, 1.)) vars)) Lp.Eq 1.)
    layout.blocks

(* Extract the chosen implementation per process from an ILP solution. *)
let changes_of_solution sys layout x =
  List.filter_map
    (fun (p, vars) ->
      let chosen = ref (-1) in
      Array.iter (fun (i, v) -> if x.(v) > 0.5 then chosen := i) vars;
      assert (!chosen >= 0);
      if !chosen <> System.selected sys p then
        Some { process = p; from_impl = System.selected sys p; to_impl = !chosen }
      else None)
    layout.blocks

let latency_gain sys p i = System.latency sys p - (System.impls sys p).(i).System.latency
let area_gain sys p i = System.area sys p -. (System.impls sys p).(i).System.area

let solve_or_keep sys layout lp ~min_objective =
  match Branch_bound.solve lp with
  | Branch_bound.Optimal { x; objective } when objective > min_objective ->
    changes_of_solution sys layout x
  | Branch_bound.Optimal _ -> []
  | Branch_bound.Infeasible ->
    (* Reachable when an external constraint (the dual formulation's area
       budget) excludes even the current selection: nothing to change. *)
    []
  | Branch_bound.Unbounded -> assert false

let gain_row sys layout =
  Lp.row
    (List.concat_map
       (fun (p, vars) ->
         Array.to_list
           (Array.map (fun (i, v) -> (v, float_of_int (latency_gain sys p i))) vars))
       layout.blocks)

(* The system cycle time can never drop below a process's own cycle: its
   latency plus the process-side cost of every channel it touches. *)
let process_cycle_floor sys p impl_latency =
  let gets =
    List.fold_left (fun acc c -> acc + System.get_side_latency sys c) 0 (System.get_order sys p)
  in
  let puts =
    List.fold_left (fun acc c -> acc + System.put_side_latency sys c) 0 (System.put_order sys p)
  in
  impl_latency + gets + puts

let area_recovery ?tct sys ~critical ~slack =
  if slack < 0 then invalid_arg "Ilp_select.area_recovery: negative slack";
  let admissible =
    match tct with
    | None -> fun _ _ _ -> true
    | Some t ->
      fun sys p i ->
        process_cycle_floor sys p (System.impls sys p).(i).System.latency <= t
  in
  let participants = System.processes sys in
  let layout = make_layout ~admissible sys participants in
  let costs = Array.make layout.nvars 0. in
  List.iter
    (fun (p, vars) ->
      Array.iter (fun (i, v) -> costs.(v) <- area_gain sys p i) vars)
    layout.blocks;
  let critical_set = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace critical_set p ()) critical;
  let budget_row =
    let coeffs =
      List.concat_map
        (fun (p, vars) ->
          if Hashtbl.mem critical_set p then
            Array.to_list
              (Array.map (fun (i, v) -> (v, float_of_int (- latency_gain sys p i))) vars)
          else [])
        layout.blocks
    in
    Lp.row coeffs Lp.Le (float_of_int slack)
  in
  let lp = Lp.make Lp.Maximize costs (budget_row :: one_of_each layout) in
  solve_or_keep sys layout lp ~min_objective:1e-9

let area_budget_row sys layout budget =
  Lp.row
    (List.concat_map
       (fun (p, vars) ->
         Array.to_list
           (Array.map (fun (i, v) -> (v, (System.impls sys p).(i).System.area)) vars))
       layout.blocks)
    Lp.Le budget

(* Maximize the cumulative latency gain of the critical processes (the
   fallback when no selection can reach the target). *)
let max_gain sys layout ?area_budget () =
  let costs = Array.make layout.nvars 0. in
  (* Latency gain dominates; a small area-gain term picks the cheapest among
     equally fast selections (latency gains are integers, area gains well
     below 1e3 mm², so 1e-6 cannot flip a latency decision). *)
  List.iter
    (fun (p, vars) ->
      Array.iter
        (fun (i, v) ->
          costs.(v) <-
            float_of_int (latency_gain sys p i) +. (1e-6 *. area_gain sys p i))
        vars)
    layout.blocks;
  let rows = one_of_each layout in
  let rows =
    match area_budget with
    | None -> rows
    | Some budget -> area_budget_row sys layout budget :: rows
  in
  let lp = Lp.make Lp.Maximize costs rows in
  (* Require a strictly positive latency improvement: the epsilon area term
     alone must not trigger churn. *)
  solve_or_keep sys layout lp ~min_objective:0.5

(* Minimize total area subject to reaching the needed gain: the literal
   reading of "minimize the difference CT - TCT" once the difference can be
   driven to zero — go exactly fast enough, as cheaply as possible. *)
let min_area_with_gain sys layout ?area_budget ~needed () =
  let costs = Array.make layout.nvars 0. in
  List.iter
    (fun (p, vars) ->
      Array.iter
        (fun (i, v) -> costs.(v) <- (System.impls sys p).(i).System.area)
        vars)
    layout.blocks;
  let rows = gain_row sys layout Lp.Ge (float_of_int needed) :: one_of_each layout in
  let rows =
    match area_budget with
    | None -> rows
    | Some budget -> area_budget_row sys layout budget :: rows
  in
  let lp = Lp.make Lp.Minimize costs rows in
  match Branch_bound.solve lp with
  | Branch_bound.Optimal { x; _ } -> Some (changes_of_solution sys layout x)
  | Branch_bound.Infeasible -> None
  | Branch_bound.Unbounded -> assert false

let timing_optimization ?area_budget ?needed_gain sys ~critical =
  match critical with
  | [] -> []
  | _ ->
    let layout = make_layout sys critical in
    (match needed_gain with
     | Some needed when needed > 0 -> (
       match min_area_with_gain sys layout ?area_budget ~needed () with
       | Some changes -> changes
       | None ->
         (* The target is out of reach: get as close as possible. *)
         max_gain sys layout ?area_budget ())
     | Some _ | None -> max_gain sys layout ?area_budget ())
