module System = Ermes_slm.System
module To_tmg = Ermes_slm.To_tmg
module Tmg = Ermes_tmg.Tmg
module Howard = Ermes_tmg.Howard
module Csr = Ermes_tmg.Csr
module Liveness = Ermes_tmg.Liveness
module Ratio = Ermes_tmg.Ratio

type analysis = {
  cycle_time : Ratio.t;
  critical_processes : System.process list;
  critical_channels : System.channel list;
  critical_cycle : string list;
  critical_delay : int;
  critical_tokens : int;
}

type deadlock = {
  dead_processes : System.process list;
  dead_channels : System.channel list;
  dead_cycle : string list;
}

type failure = Deadlock of deadlock | No_cycle

let of_howard mapping outcome =
  let tmg = mapping.To_tmg.tmg in
  match outcome with
  | Ok r ->
    Ok
      {
        cycle_time = r.Howard.cycle_time;
        critical_processes =
          To_tmg.processes_on_cycle mapping r.Howard.critical_transitions;
        critical_channels =
          To_tmg.channels_on_cycle mapping r.Howard.critical_transitions;
        critical_cycle =
          List.map (Tmg.transition_name tmg) r.Howard.critical_transitions;
        critical_delay =
          List.fold_left (fun acc t -> acc + Tmg.delay tmg t) 0
            r.Howard.critical_transitions;
        critical_tokens =
          List.fold_left (fun acc p -> acc + Tmg.tokens tmg p) 0
            r.Howard.critical_places;
      }
  | Error (Howard.Deadlock dc) ->
    let ts = dc.Liveness.dead_transitions in
    Error
      (Deadlock
         {
           dead_processes = To_tmg.processes_on_cycle mapping ts;
           dead_channels = To_tmg.channels_on_cycle mapping ts;
           dead_cycle = List.map (Tmg.transition_name tmg) ts;
         })
  | Error Howard.No_cycle -> Error No_cycle

let analyze sys =
  let mapping = To_tmg.build sys in
  of_howard mapping (Csr.cycle_time mapping.To_tmg.tmg)

let cycle_time_exn sys =
  match analyze sys with
  | Ok a -> a.cycle_time
  | Error (Deadlock d) ->
    failwith
      (Printf.sprintf "deadlock on cycle [%s]" (String.concat " " d.dead_cycle))
  | Error No_cycle -> failwith "system TMG has no cycle"

let throughput a = Ratio.inv a.cycle_time

type slack = Bounded of int | Unbounded

let pp_slack ppf = function
  | Bounded s -> Format.fprintf ppf "%d" s
  | Unbounded -> Format.fprintf ppf "inf"

(* Maximum reduced cost of a closed walk through [start], where reduced costs
   are den*delay - num*tokens <= 0 around every cycle (guaranteed at the
   exact cycle time). Bellman-Ford-style longest-walk relaxation from
   [start]; with no positive cycle it converges within |T| rounds. Returns
   None when no cycle passes through [start]. *)
let max_cycle_cost_through tmg ~num ~den start =
  let n = Tmg.transition_count tmg in
  let neg = min_int / 4 in
  let d = Array.make n neg in
  let relax_round () =
    let changed = ref false in
    List.iter
      (fun p ->
        let u = Tmg.place_src tmg p and v = Tmg.place_dst tmg p in
        let base = if u = start then 0 else d.(u) in
        if base > neg then begin
          let c = (den * Tmg.delay tmg v) - (num * Tmg.tokens tmg p) in
          if base + c > d.(v) then begin
            d.(v) <- base + c;
            changed := true
          end
        end)
      (Tmg.places tmg);
    !changed
  in
  let rec go i = if i = 0 then () else if relax_round () then go (i - 1) else () in
  go (n + 1);
  if d.(start) > neg then Some d.(start) else None

let slack_of_transitions sys transitions_of objects what =
  let mapping = To_tmg.build sys in
  let tmg = mapping.To_tmg.tmg in
  match Csr.cycle_time tmg with
  | Error _ -> failwith (Printf.sprintf "Perf.%s: system deadlocks or has no cycle" what)
  | Ok r ->
    let num = Ratio.num r.Howard.cycle_time and den = Ratio.den r.Howard.cycle_time in
    List.map
      (fun x ->
        (* A latency bump of s raises the delay of {e every} unfolded
           instance, so a cycle threading k of the object's n instances gains
           den*s*k <= den*s*n reduced cost. Dividing by n keeps the bound
           sound at any unfolding; at unit rates n = 1 and this is exact. *)
        let ts = transitions_of mapping x in
        let n = Array.length ts in
        Array.fold_left
          (fun acc t ->
            match (acc, max_cycle_cost_through tmg ~num ~den t) with
            | acc, None -> acc
            | Unbounded, Some worst -> Bounded (-worst / (den * n))
            | Bounded s, Some worst -> Bounded (min s (-worst / (den * n))))
          Unbounded ts
        |> fun slack -> (x, slack))
      objects

let latency_slack sys =
  slack_of_transitions sys
    (fun m p -> m.To_tmg.compute_transition.(p))
    (System.processes sys) "latency_slack"

let channel_slack sys =
  slack_of_transitions sys
    (fun m c -> m.To_tmg.channel_entry.(c))
    (System.channels sys) "channel_slack"

let pp_analysis sys ppf a =
  Format.fprintf ppf
    "@[<v>cycle time %a (throughput %a)@,critical processes: %s@,critical channels: %s@]"
    Ratio.pp a.cycle_time Ratio.pp (throughput a)
    (String.concat " " (List.map (System.process_name sys) a.critical_processes))
    (String.concat " " (List.map (System.channel_name sys) a.critical_channels))

let pp_failure sys ppf = function
  | No_cycle -> Format.fprintf ppf "no cycle in the system TMG"
  | Deadlock d ->
    Format.fprintf ppf "@[<v>deadlock: token-free cycle [%s]@,processes: %s@,channels: %s@]"
      (String.concat " " d.dead_cycle)
      (String.concat " " (List.map (System.process_name sys) d.dead_processes))
      (String.concat " " (List.map (System.channel_name sys) d.dead_channels))
