module System = Ermes_slm.System
module Ratio = Ermes_tmg.Ratio

type result = {
  best_cycle_time : Ratio.t;
  best_system : System.t;
  evaluated : int;
  deadlocked : int;
}

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let search ?(limit = 100_000) ?(jobs = 1) sys =
  let combos = System.order_combinations sys in
  if combos > float_of_int limit then
    invalid_arg
      (Printf.sprintf "Oracle.search: %.3g order combinations exceed the limit of %d"
         combos limit);
  let work = System.copy sys in
  (* Per-process choice lists: all (get-order, put-order) pairs. *)
  let choices =
    List.map
      (fun p ->
        let gets = permutations (System.get_order work p) in
        let puts = permutations (System.put_order work p) in
        (p, List.concat_map (fun g -> List.map (fun o -> (g, o)) puts) gets))
      (System.processes work)
  in
  (* Split the enumeration into contiguous lexicographic slices by expanding
     a prefix of the per-process choices. Each slice is evaluated on its own
     System copy with its own incremental session; slice results merge in
     slice order with strict improvement, which reproduces the sequential
     first-found-minimum exactly — the outcome is bit-identical for every
     [jobs] value (only wall-clock differs). *)
  let threshold = if jobs <= 1 then 1 else jobs * 8 in
  let rec slice prefixes rest =
    match rest with
    | (p, opts) :: tail when List.length prefixes < threshold ->
      let prefixes' =
        List.concat_map
          (fun pre -> List.map (fun choice -> (p, choice) :: pre) opts)
          prefixes
      in
      slice prefixes' tail
    | _ -> (List.map List.rev prefixes, rest)
  in
  let prefixes, rest = slice [ [] ] choices in
  (* Copies are made sequentially, before any domain spawns. *)
  let tasks = List.map (fun pre -> (pre, System.copy work)) prefixes in
  let run (pre, w) =
    List.iter
      (fun (p, (g, o)) ->
        System.set_get_order w p g;
        System.set_put_order w p o)
      pre;
    let session = Incremental.create w in
    let best = ref None in
    let evaluated = ref 0 and deadlocked = ref 0 in
    let evaluate () =
      incr evaluated;
      match Incremental.analyze session with
      | Ok a ->
        let better =
          match !best with
          | None -> true
          | Some (ct, _) -> Ratio.(a.Perf.cycle_time < ct)
        in
        if better then best := Some (a.Perf.cycle_time, System.copy w)
      | Error (Perf.Deadlock _) -> incr deadlocked
      | Error Perf.No_cycle -> ()
    in
    let rec enumerate = function
      | [] -> evaluate ()
      | (p, opts) :: tail ->
        List.iter
          (fun (g, o) ->
            System.set_get_order w p g;
            System.set_put_order w p o;
            enumerate tail)
          opts
    in
    enumerate rest;
    (!best, !evaluated, !deadlocked)
  in
  let results = Ermes_parallel.Parallel.map ~jobs run tasks in
  let best = ref None in
  let evaluated = ref 0 and deadlocked = ref 0 in
  List.iter
    (fun (b, e, d) ->
      evaluated := !evaluated + e;
      deadlocked := !deadlocked + d;
      match b with
      | None -> ()
      | Some (ct, s) -> (
        match !best with
        | None -> best := Some (ct, s)
        | Some (ct0, _) -> if Ratio.(ct < ct0) then best := Some (ct, s)))
    results;
  match !best with
  | None -> None
  | Some (ct, s) ->
    Some
      {
        best_cycle_time = ct;
        best_system = s;
        evaluated = !evaluated;
        deadlocked = !deadlocked;
      }
