module System = Ermes_slm.System
module Ratio = Ermes_tmg.Ratio

type result = {
  best_cycle_time : Ratio.t;
  best_system : System.t;
  evaluated : int;
  deadlocked : int;
}

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

type slice_outcome = {
  slice_best : (Ratio.t * (int list * int list) list) option;
  slice_evaluated : int;
  slice_deadlocked : int;
}

let orders_signature sys =
  List.map
    (fun p -> (System.get_order sys p, System.put_order sys p))
    (System.processes sys)

let search ?(limit = 100_000) ?(jobs = 1) ?checkpoint ?resume sys =
  let combos = System.order_combinations sys in
  if combos > float_of_int limit then
    invalid_arg
      (Printf.sprintf "Oracle.search: %.3g order combinations exceed the limit of %d"
         combos limit);
  let work = System.copy sys in
  (* Per-process choice lists: all (get-order, put-order) pairs. *)
  let choices =
    List.map
      (fun p ->
        let gets = permutations (System.get_order work p) in
        let puts = permutations (System.put_order work p) in
        (p, List.concat_map (fun g -> List.map (fun o -> (g, o)) puts) gets))
      (System.processes work)
  in
  (* Split the enumeration into contiguous lexicographic slices by expanding
     a prefix of the per-process choices. Each slice is evaluated on its own
     System copy with its own incremental session; slice results merge in
     slice order with strict improvement, which reproduces the sequential
     first-found-minimum exactly — the outcome is bit-identical for every
     [jobs] value (only wall-clock differs). *)
  (* Checkpointing gives every slice an identity (its index), so the slicing
     must then be a function of the system alone — a fixed threshold keeps
     journals interchangeable across [jobs] values. Without checkpointing the
     threshold scales with [jobs] as before (and collapses to one slice
     sequentially, where splitting buys nothing). *)
  let checkpointed = checkpoint <> None || resume <> None in
  let threshold =
    if checkpointed then 64 else if jobs <= 1 then 1 else jobs * 8
  in
  let rec slice prefixes rest =
    match rest with
    | (p, opts) :: tail when List.length prefixes < threshold ->
      let prefixes' =
        List.concat_map
          (fun pre -> List.map (fun choice -> (p, choice) :: pre) opts)
          prefixes
      in
      slice prefixes' tail
    | _ -> (List.map List.rev prefixes, rest)
  in
  let prefixes, rest = slice [ [] ] choices in
  let tasks = Array.of_list prefixes in
  (* One slice, against a caller-provided working copy and warm incremental
     session. Every enumeration leaf sets the complete order assignment on
     the way down (prefix here, the rest in [enumerate]), so the outcome is
     a function of the prefix alone — independent of whatever orders the
     previous slice left on [w]. That is what lets slices share a session. *)
  let run_slice w session pre =
    List.iter
      (fun (p, (g, o)) ->
        System.set_get_order w p g;
        System.set_put_order w p o)
      pre;
    let best = ref None in
    let evaluated = ref 0 and deadlocked = ref 0 in
    let evaluate () =
      incr evaluated;
      match Incremental.analyze session with
      | Ok a ->
        let better =
          match !best with
          | None -> true
          | Some (ct, _) -> Ratio.(a.Perf.cycle_time < ct)
        in
        if better then best := Some (a.Perf.cycle_time, orders_signature w)
      | Error (Perf.Deadlock _) -> incr deadlocked
      | Error Perf.No_cycle -> ()
    in
    let rec enumerate = function
      | [] -> evaluate ()
      | (p, opts) :: tail ->
        List.iter
          (fun (g, o) ->
            System.set_get_order w p g;
            System.set_put_order w p o;
            enumerate tail)
          opts
    in
    enumerate rest;
    { slice_best = !best; slice_evaluated = !evaluated; slice_deadlocked = !deadlocked }
  in
  (* A group of slices shares one System copy and one incremental session:
     order flips between consecutive slices are exactly the cheap warm path
     of [Incremental]. Giving every slice its own copy + cold session (as an
     earlier version did) made [jobs] > 1 *slower* than sequential — the
     sequential run kept one warm session for the whole enumeration while
     the parallel run paid dozens of cold solver starts. *)
  let run_group idxs =
    let w = System.copy work in
    let session = Incremental.create w in
    List.map (fun i -> run_slice w session tasks.(i)) idxs
  in
  (* Split [xs] into at most [k] contiguous near-equal chunks. *)
  let chunk k xs =
    let len = List.length xs in
    if len = 0 then []
    else begin
      let size = (len + k - 1) / k in
      let rec go xs =
        match xs with
        | [] -> []
        | _ ->
          let head = List.filteri (fun i _ -> i < size) xs in
          let tail = List.filteri (fun i _ -> i >= size) xs in
          head :: go tail
      in
      go xs
    end
  in
  let n = Array.length tasks in
  let outcomes = Array.make n None in
  (match resume with
  | None -> ()
  | Some lookup ->
    for i = 0 to n - 1 do
      outcomes.(i) <- lookup ~slice:i
    done);
  (* The checkpoint hook fires in strict slice order as the completed prefix
     advances — including for resumed slices, so a resumed journal ends up
     identical to an uninterrupted one. *)
  let flushed = ref 0 in
  let flush () =
    match checkpoint with
    | None -> ()
    | Some f ->
      let continue_ = ref true in
      while !continue_ && !flushed < n do
        match outcomes.(!flushed) with
        | Some o ->
          f ~slice:!flushed o;
          incr flushed
        | None -> continue_ := false
      done
  in
  flush ();
  (* Checkpointed campaigns run in waves so progress persists as they go
     (one journal write per wave, not one at the very end); without a
     journal there is nothing to persist and the whole pending set is one
     wave. Each wave is split into at most [jobs] groups. The per-slice
     outcomes — and hence the merged result and the journal records — are
     bit-identical for every [jobs] value; grouping and waves only change
     wall-clock and persistence granularity. *)
  let pending = List.filter (fun i -> outcomes.(i) = None) (List.init n Fun.id) in
  (* Fan out over at most as many domains as the host has cores: domains
     beyond that only timeshare one core and pay cross-domain GC
     coordination — the other half of the historical jobs>1 slowdown.
     Outcomes are bit-identical for any fan-out. *)
  let fanout = max 1 (min jobs (Ermes_parallel.Parallel.available ())) in
  let wave = if checkpointed then max 1 (jobs * 4) else max 1 n in
  let rec waves = function
    | [] -> ()
    | is ->
      let batch = List.filteri (fun k _ -> k < wave) is in
      let later = List.filteri (fun k _ -> k >= wave) is in
      let groups = chunk fanout batch in
      let results = Ermes_parallel.Parallel.map ~jobs:fanout run_group groups in
      List.iter2
        (fun g os -> List.iter2 (fun i o -> outcomes.(i) <- Some o) g os)
        groups results;
      flush ();
      waves later
  in
  waves pending;
  let best = ref None in
  let evaluated = ref 0 and deadlocked = ref 0 in
  Array.iter
    (function
      | None -> assert false
      | Some o -> (
        evaluated := !evaluated + o.slice_evaluated;
        deadlocked := !deadlocked + o.slice_deadlocked;
        match o.slice_best with
        | None -> ()
        | Some (ct, sg) -> (
          match !best with
          | None -> best := Some (ct, sg)
          | Some (ct0, _) -> if Ratio.(ct < ct0) then best := Some (ct, sg))))
    outcomes;
  match !best with
  | None -> None
  | Some (ct, signature) ->
    (* Reconstitute the winning system from its orders signature: orders are
       the only thing the enumeration mutates, so this is exactly the copy
       the winning slice evaluated. *)
    let s = System.copy work in
    List.iteri
      (fun p (g, o) ->
        System.set_get_order s p g;
        System.set_put_order s p o)
      signature;
    Some
      {
        best_cycle_time = ct;
        best_system = s;
        evaluated = !evaluated;
        deadlocked = !deadlocked;
      }
