module System = Ermes_slm.System
module Ratio = Ermes_tmg.Ratio

type result = {
  best_cycle_time : Ratio.t;
  best_system : System.t;
  evaluated : int;
  deadlocked : int;
}

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let search ?(limit = 100_000) sys =
  let combos = System.order_combinations sys in
  if combos > float_of_int limit then
    invalid_arg
      (Printf.sprintf "Oracle.search: %.3g order combinations exceed the limit of %d"
         combos limit);
  let work = System.copy sys in
  (* Per-process choice lists: all (get-order, put-order) pairs. *)
  let choices =
    List.map
      (fun p ->
        let gets = permutations (System.get_order work p) in
        let puts = permutations (System.put_order work p) in
        (p, List.concat_map (fun g -> List.map (fun o -> (g, o)) puts) gets))
      (System.processes work)
  in
  let best = ref None in
  let evaluated = ref 0 and deadlocked = ref 0 in
  let evaluate () =
    incr evaluated;
    match Perf.analyze work with
    | Ok a ->
      let better =
        match !best with
        | None -> true
        | Some (ct, _) -> Ratio.(a.Perf.cycle_time < ct)
      in
      if better then best := Some (a.Perf.cycle_time, System.copy work)
    | Error (Perf.Deadlock _) -> incr deadlocked
    | Error Perf.No_cycle -> ()
  in
  let rec enumerate = function
    | [] -> evaluate ()
    | (p, opts) :: rest ->
      List.iter
        (fun (g, o) ->
          System.set_get_order work p g;
          System.set_put_order work p o;
          enumerate rest)
        opts
  in
  enumerate choices;
  match !best with
  | None -> None
  | Some (ct, s) ->
    Some
      {
        best_cycle_time = ct;
        best_system = s;
        evaluated = !evaluated;
        deadlocked = !deadlocked;
      }
