let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attrs_to_string = function
  | [] -> ""
  | attrs ->
    let pair (k, v) = Printf.sprintf "%s=\"%s\"" k (escape v) in
    " [" ^ String.concat ", " (List.map pair attrs) ^ "]"

let to_string ?(name = "g") ?(vertex_attrs = fun _ -> []) ?(arc_attrs = fun _ -> [])
    ~vertex_name g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  let emit_vertex v =
    Buffer.add_string buf
      (Printf.sprintf "  \"%s\"%s;\n" (escape (vertex_name v))
         (attrs_to_string (vertex_attrs v)))
  in
  let emit_arc a =
    let s, d = Digraph.arc_ends g a in
    Buffer.add_string buf
      (Printf.sprintf "  \"%s\" -> \"%s\"%s;\n"
         (escape (vertex_name s))
         (escape (vertex_name d))
         (attrs_to_string (arc_attrs a)))
  in
  Digraph.iter_vertices emit_vertex g;
  Digraph.iter_arcs emit_arc g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
