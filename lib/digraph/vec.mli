(** Growable arrays.

    A tiny dynamic-array substrate used throughout the project (OCaml 5.1
    predates [Dynarray] in the standard library). Elements are stored densely
    in insertion order; indices are stable. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element. @raise Invalid_argument if out of range. *)

val set : 'a t -> int -> 'a -> unit
(** [set v i x] replaces the [i]-th element. @raise Invalid_argument if out of
    range. *)

val push : 'a t -> 'a -> int
(** [push v x] appends [x] and returns its index. *)

val pop : 'a t -> 'a option
(** [pop v] removes and returns the last element, if any. *)

val last : 'a t -> 'a option

val remove_first : 'a t -> ('a -> bool) -> bool
(** [remove_first v p] removes the first element satisfying [p], shifting the
    rest left (relative order preserved). Returns whether one was removed. *)

val clear : 'a t -> unit
(** [clear v] removes all elements (capacity is retained). *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val to_array : 'a t -> 'a array

val map : ('a -> 'b) -> 'a t -> 'b t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** [sort cmp v] sorts [v] in place according to [cmp]. *)
