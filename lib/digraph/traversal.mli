(** Graph traversals: DFS with arc classification, BFS, topological sort.

    All traversals are iterative (explicit stacks), so they handle the
    10,000-process synthetic benchmarks without exhausting the OCaml stack. *)

type arc_kind =
  | Tree  (** arc to a previously unvisited vertex *)
  | Back  (** arc to an ancestor on the current DFS stack — lies on a cycle *)
  | Forward_or_cross  (** arc to an already-finished vertex *)

type dfs_result = {
  pre : int array;  (** preorder number per vertex; [-1] if unreached *)
  post : int array;  (** postorder number per vertex; [-1] if unreached *)
  kind : arc_kind array;  (** classification per arc; arcs out of unreached
                              vertices are classified [Forward_or_cross] *)
}

val dfs : ?roots:Digraph.vertex list -> ('v, 'a) Digraph.t -> dfs_result
(** [dfs ?roots g] runs a depth-first search from each root in order (default:
    every vertex in id order), exploring out-arcs in insertion order. *)

val back_arcs : ?roots:Digraph.vertex list -> ('v, 'a) Digraph.t -> bool array
(** [back_arcs ?roots g] is a per-arc flag marking the DFS back arcs. Removing
    all marked arcs yields an acyclic graph (for the vertices reached from
    [roots]). *)

val bfs_order : roots:Digraph.vertex list -> ('v, 'a) Digraph.t -> Digraph.vertex list
(** Vertices in breadth-first order from [roots]; unreached vertices are
    omitted. *)

val reachable : from:Digraph.vertex list -> ('v, 'a) Digraph.t -> bool array
(** Per-vertex reachability from any vertex of [from]. *)

val topological_sort :
  ('v, 'a) Digraph.t -> (Digraph.vertex list, Digraph.vertex list) result
(** [topological_sort g] is [Ok order] with every arc pointing forward in
    [order], or [Error cycle] where [cycle] is a list of vertices forming a
    directed cycle. *)
