type vertex = int
type arc = int

type ('v, 'a) arc_record = {
  mutable src : vertex;
  mutable dst : vertex;
  mutable alabel : 'a;
}

type ('v, 'a) vertex_record = {
  mutable vlabel : 'v;
  out_arcs : arc Vec.t;
  in_arcs : arc Vec.t;
}

type ('v, 'a) t = {
  verts : ('v, 'a) vertex_record Vec.t;
  arc_recs : ('v, 'a) arc_record Vec.t;
}

let create () = { verts = Vec.create (); arc_recs = Vec.create () }

let add_vertex g label =
  Vec.push g.verts { vlabel = label; out_arcs = Vec.create (); in_arcs = Vec.create () }

let check_vertex g v fn =
  if v < 0 || v >= Vec.length g.verts then
    invalid_arg (Printf.sprintf "Digraph.%s: unknown vertex %d" fn v)

let add_arc g ~src ~dst label =
  check_vertex g src "add_arc";
  check_vertex g dst "add_arc";
  let a = Vec.push g.arc_recs { src; dst; alabel = label } in
  ignore (Vec.push (Vec.get g.verts src).out_arcs a);
  ignore (Vec.push (Vec.get g.verts dst).in_arcs a);
  a

let vertex_count g = Vec.length g.verts
let arc_count g = Vec.length g.arc_recs

let vertex_label g v =
  check_vertex g v "vertex_label";
  (Vec.get g.verts v).vlabel

let set_vertex_label g v l =
  check_vertex g v "set_vertex_label";
  (Vec.get g.verts v).vlabel <- l

let check_arc g a fn =
  if a < 0 || a >= Vec.length g.arc_recs then
    invalid_arg (Printf.sprintf "Digraph.%s: unknown arc %d" fn a)

let arc_label g a =
  check_arc g a "arc_label";
  (Vec.get g.arc_recs a).alabel

let set_arc_label g a l =
  check_arc g a "set_arc_label";
  (Vec.get g.arc_recs a).alabel <- l

let arc_src g a =
  check_arc g a "arc_src";
  (Vec.get g.arc_recs a).src

let arc_dst g a =
  check_arc g a "arc_dst";
  (Vec.get g.arc_recs a).dst

let arc_ends g a = (arc_src g a, arc_dst g a)

let rewire_arc g a ~src ~dst =
  check_arc g a "rewire_arc";
  check_vertex g src "rewire_arc";
  check_vertex g dst "rewire_arc";
  let r = Vec.get g.arc_recs a in
  if r.src <> src then begin
    ignore (Vec.remove_first (Vec.get g.verts r.src).out_arcs (Int.equal a));
    ignore (Vec.push (Vec.get g.verts src).out_arcs a);
    r.src <- src
  end;
  if r.dst <> dst then begin
    ignore (Vec.remove_first (Vec.get g.verts r.dst).in_arcs (Int.equal a));
    ignore (Vec.push (Vec.get g.verts dst).in_arcs a);
    r.dst <- dst
  end

let out_arcs g v =
  check_vertex g v "out_arcs";
  Vec.to_list (Vec.get g.verts v).out_arcs

let in_arcs g v =
  check_vertex g v "in_arcs";
  Vec.to_list (Vec.get g.verts v).in_arcs

let out_degree g v =
  check_vertex g v "out_degree";
  Vec.length (Vec.get g.verts v).out_arcs

let in_degree g v =
  check_vertex g v "in_degree";
  Vec.length (Vec.get g.verts v).in_arcs

let succs g v = List.map (arc_dst g) (out_arcs g v)
let preds g v = List.map (arc_src g) (in_arcs g v)

let vertices g = List.init (vertex_count g) Fun.id
let arcs g = List.init (arc_count g) Fun.id

let iter_vertices f g =
  for v = 0 to vertex_count g - 1 do
    f v
  done

let iter_arcs f g =
  for a = 0 to arc_count g - 1 do
    f a
  done

let fold_vertices f g acc =
  let acc = ref acc in
  iter_vertices (fun v -> acc := f v !acc) g;
  !acc

let fold_arcs f g acc =
  let acc = ref acc in
  iter_arcs (fun a -> acc := f a !acc) g;
  !acc

let find_arc g ~src ~dst =
  List.find_opt (fun a -> arc_dst g a = dst) (out_arcs g src)

let map_labels ~vertex ~arc g =
  let g' = create () in
  iter_vertices (fun v -> ignore (add_vertex g' (vertex (vertex_label g v)))) g;
  iter_arcs
    (fun a -> ignore (add_arc g' ~src:(arc_src g a) ~dst:(arc_dst g a) (arc (arc_label g a))))
    g;
  g'

let reverse g =
  let g' = create () in
  iter_vertices (fun v -> ignore (add_vertex g' (vertex_label g v))) g;
  iter_arcs
    (fun a -> ignore (add_arc g' ~src:(arc_dst g a) ~dst:(arc_src g a) (arc_label g a)))
    g;
  g'
