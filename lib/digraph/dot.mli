(** Graphviz DOT export. *)

val to_string :
  ?name:string ->
  ?vertex_attrs:(Digraph.vertex -> (string * string) list) ->
  ?arc_attrs:(Digraph.arc -> (string * string) list) ->
  vertex_name:(Digraph.vertex -> string) ->
  ('v, 'a) Digraph.t ->
  string
(** [to_string ~vertex_name g] renders [g] in DOT syntax. [vertex_attrs] and
    [arc_attrs] supply extra attribute pairs (e.g. [("label", "d=3")]);
    attribute values are quoted and escaped. *)

val escape : string -> string
(** Escape a string for use inside a double-quoted DOT attribute value. *)
