type result = { component : int array; count : int }

(* Iterative Tarjan over a flattened adjacency. The DFS machinery is four int
   arrays (vertex stack, frame stack, frame cursors, lowlinks) instead of list
   frames and per-vertex successor lists, so a million-vertex graph costs no
   GC pressure and no call-stack depth. The adjacency is flattened once from
   [Digraph.out_arcs] in the same per-vertex order [Digraph.succs] would
   yield, and roots are visited [0 .. n-1], so component numbering is exactly
   the numbering of the classic formulation (reverse topological order). *)
let compute g =
  let n = Digraph.vertex_count g in
  (* Flatten successors: row.(v) .. row.(v+1)-1 index into adj. *)
  let row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row.(v + 1) <- row.(v) + Digraph.out_degree g v
  done;
  let m = row.(n) in
  let adj = Array.make (max m 1) 0 in
  for v = 0 to n - 1 do
    let pos = ref row.(v) in
    List.iter
      (fun a ->
        adj.(!pos) <- Digraph.arc_dst g a;
        incr pos)
      (Digraph.out_arcs g v)
  done;
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  let stack = Array.make (max n 1) 0 in
  let sp = ref 0 in
  (* DFS frames: frame_v.(i) is the vertex, frame_it.(i) the cursor into adj. *)
  let frame_v = Array.make (max n 1) 0 in
  let frame_it = Array.make (max n 1) 0 in
  let fp = ref 0 in
  let next_index = ref 0 in
  let comp_count = ref 0 in
  let push_frame v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack.(!sp) <- v;
    incr sp;
    on_stack.(v) <- true;
    frame_v.(!fp) <- v;
    frame_it.(!fp) <- row.(v);
    incr fp
  in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      push_frame root;
      while !fp > 0 do
        let f = !fp - 1 in
        let v = frame_v.(f) in
        if frame_it.(f) < row.(v + 1) then begin
          let w = adj.(frame_it.(f)) in
          frame_it.(f) <- frame_it.(f) + 1;
          if index.(w) < 0 then push_frame w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          decr fp;
          if !fp > 0 then begin
            let p = frame_v.(!fp - 1) in
            lowlink.(p) <- min lowlink.(p) lowlink.(v)
          end;
          if lowlink.(v) = index.(v) then begin
            let continue_pop = ref true in
            while !continue_pop do
              decr sp;
              let w = stack.(!sp) in
              on_stack.(w) <- false;
              component.(w) <- !comp_count;
              if w = v then continue_pop := false
            done;
            incr comp_count
          end
        end
      done
    end
  done;
  { component; count = !comp_count }

let components r =
  let buckets = Array.make r.count [] in
  let n = Array.length r.component in
  for v = n - 1 downto 0 do
    let c = r.component.(v) in
    buckets.(c) <- v :: buckets.(c)
  done;
  buckets

let is_strongly_connected g =
  Digraph.vertex_count g > 0 && (compute g).count = 1

let condensation g =
  let r = compute g in
  let q = Digraph.create () in
  for _ = 1 to r.count do
    ignore (Digraph.add_vertex q ())
  done;
  let add_quotient_arc a =
    let s = r.component.(Digraph.arc_src g a)
    and d = r.component.(Digraph.arc_dst g a) in
    if s <> d then ignore (Digraph.add_arc q ~src:s ~dst:d ())
  in
  Digraph.iter_arcs add_quotient_arc g;
  (r, q)
