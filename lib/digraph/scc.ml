type result = { component : int array; count : int }

(* Iterative Tarjan: the classic recursive formulation rewritten with an
   explicit frame stack so 10k-vertex graphs cannot overflow the call stack. *)
let compute g =
  let n = Digraph.vertex_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let comp_count = ref 0 in
  let visit root =
    if index.(root) >= 0 then ()
    else begin
      let frames = ref [] in
      let push_frame v =
        index.(v) <- !next_index;
        lowlink.(v) <- !next_index;
        incr next_index;
        stack := v :: !stack;
        on_stack.(v) <- true;
        frames := (v, ref (Digraph.succs g v)) :: !frames
      in
      push_frame root;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, rest) :: parent_frames ->
          (match !rest with
           | w :: more ->
             rest := more;
             if index.(w) < 0 then push_frame w
             else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
           | [] ->
             frames := parent_frames;
             (match parent_frames with
              | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(v)
              | [] -> ());
             if lowlink.(v) = index.(v) then begin
               let rec popc () =
                 match !stack with
                 | [] -> assert false
                 | w :: rest ->
                   stack := rest;
                   on_stack.(w) <- false;
                   component.(w) <- !comp_count;
                   if w <> v then popc ()
               in
               popc ();
               incr comp_count
             end)
      done
    end
  in
  for v = 0 to n - 1 do
    visit v
  done;
  { component; count = !comp_count }

let components r =
  let buckets = Array.make r.count [] in
  let n = Array.length r.component in
  for v = n - 1 downto 0 do
    let c = r.component.(v) in
    buckets.(c) <- v :: buckets.(c)
  done;
  buckets

let is_strongly_connected g =
  Digraph.vertex_count g > 0 && (compute g).count = 1

let condensation g =
  let r = compute g in
  let q = Digraph.create () in
  for _ = 1 to r.count do
    ignore (Digraph.add_vertex q ())
  done;
  let add_quotient_arc a =
    let s = r.component.(Digraph.arc_src g a)
    and d = r.component.(Digraph.arc_dst g a) in
    if s <> d then ignore (Digraph.add_arc q ~src:s ~dst:d ())
  in
  Digraph.iter_arcs add_quotient_arc g;
  (r, q)
