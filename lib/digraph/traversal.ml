type arc_kind = Tree | Back | Forward_or_cross

type dfs_result = { pre : int array; post : int array; kind : arc_kind array }

type color = White | Gray | Black

let dfs ?roots g =
  let n = Digraph.vertex_count g in
  let roots = match roots with Some rs -> rs | None -> Digraph.vertices g in
  let pre = Array.make n (-1) and post = Array.make n (-1) in
  let kind = Array.make (Digraph.arc_count g) Forward_or_cross in
  let color = Array.make n White in
  let pre_counter = ref 0 and post_counter = ref 0 in
  (* Each stack frame is a vertex plus its not-yet-explored out-arcs. *)
  let visit root =
    if color.(root) = White then begin
      color.(root) <- Gray;
      pre.(root) <- !pre_counter;
      incr pre_counter;
      let stack = ref [ (root, Digraph.out_arcs g root) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (v, []) :: rest ->
          color.(v) <- Black;
          post.(v) <- !post_counter;
          incr post_counter;
          stack := rest
        | (v, a :: more) :: rest ->
          stack := (v, more) :: rest;
          let w = Digraph.arc_dst g a in
          (match color.(w) with
           | White ->
             kind.(a) <- Tree;
             color.(w) <- Gray;
             pre.(w) <- !pre_counter;
             incr pre_counter;
             stack := (w, Digraph.out_arcs g w) :: !stack
           | Gray -> kind.(a) <- Back
           | Black -> kind.(a) <- Forward_or_cross)
      done
    end
  in
  List.iter visit roots;
  { pre; post; kind }

let back_arcs ?roots g =
  let r = dfs ?roots g in
  Array.map (fun k -> k = Back) r.kind

let bfs_order ~roots g =
  let n = Digraph.vertex_count g in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let order = ref [] in
  let enqueue v =
    if not seen.(v) then begin
      seen.(v) <- true;
      Queue.add v queue
    end
  in
  List.iter enqueue roots;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    List.iter enqueue (Digraph.succs g v)
  done;
  List.rev !order

let reachable ~from g =
  let n = Digraph.vertex_count g in
  let seen = Array.make n false in
  List.iter (fun v -> seen.(v) <- true) (bfs_order ~roots:from g);
  seen

let topological_sort g =
  let n = Digraph.vertex_count g in
  let indeg = Array.make n 0 in
  Digraph.iter_arcs (fun a -> let d = Digraph.arc_dst g a in indeg.(d) <- indeg.(d) + 1) g;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = ref [] and emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr emitted;
    let relax w =
      indeg.(w) <- indeg.(w) - 1;
      if indeg.(w) = 0 then Queue.add w queue
    in
    List.iter relax (Digraph.succs g v)
  done;
  if !emitted = n then Ok (List.rev !order)
  else begin
    (* Every leftover vertex keeps an unresolved predecessor that is itself a
       leftover, so walking predecessors inside the leftover set must repeat a
       vertex, exposing a cycle. *)
    let leftover v = indeg.(v) > 0 in
    let start =
      match List.find_opt leftover (Digraph.vertices g) with
      | Some v -> v
      | None -> assert false
    in
    let mark = Array.make n false in
    (* The walk pushes each predecessor in front of [path], so consecutive
       elements of [path] are joined by arcs left to right. When a vertex [v]
       repeats it is both the head of [path] and some later element; the
       prefix up to (excluding) that second occurrence is a directed cycle in
       arc order. *)
    let rec walk v path =
      if mark.(v) then begin
        match path with
        | [] -> assert false
        | head :: rest ->
          let rec prefix acc = function
            | [] -> assert false
            | x :: r -> if x = v then List.rev acc else prefix (x :: acc) r
          in
          head :: prefix [] rest
      end
      else begin
        mark.(v) <- true;
        match List.find_opt leftover (Digraph.preds g v) with
        | Some p -> walk p (p :: path)
        | None -> assert false
      end
    in
    Error (walk start [ start ])
  end
