(** Mutable directed multigraphs.

    Vertices and arcs are identified by dense integer ids assigned in creation
    order; both carry a user payload ("label"). Parallel arcs and self-loops
    are allowed. Out- and in-arc lists preserve insertion order, which matters
    for the channel-ordering algorithm: the order of a process's [put]
    statements is exactly the insertion order of its outgoing arcs. *)

type vertex = int
type arc = int

type ('v, 'a) t
(** A graph with vertex labels of type ['v] and arc labels of type ['a]. *)

val create : unit -> ('v, 'a) t

val add_vertex : ('v, 'a) t -> 'v -> vertex
(** [add_vertex g label] adds a fresh vertex and returns its id. Ids are
    consecutive starting from [0]. *)

val add_arc : ('v, 'a) t -> src:vertex -> dst:vertex -> 'a -> arc
(** [add_arc g ~src ~dst label] adds a fresh arc [src -> dst]. Ids are
    consecutive starting from [0]. @raise Invalid_argument if either endpoint
    does not exist. *)

val vertex_count : ('v, 'a) t -> int
val arc_count : ('v, 'a) t -> int

val vertex_label : ('v, 'a) t -> vertex -> 'v
val set_vertex_label : ('v, 'a) t -> vertex -> 'v -> unit

val arc_label : ('v, 'a) t -> arc -> 'a
val set_arc_label : ('v, 'a) t -> arc -> 'a -> unit

val arc_src : ('v, 'a) t -> arc -> vertex
val arc_dst : ('v, 'a) t -> arc -> vertex
val arc_ends : ('v, 'a) t -> arc -> vertex * vertex
(** [arc_ends g a] is [(arc_src g a, arc_dst g a)]. *)

val rewire_arc : ('v, 'a) t -> arc -> src:vertex -> dst:vertex -> unit
(** [rewire_arc g a ~src ~dst] moves the existing arc [a] between new
    endpoints, keeping its id and label. The arc leaves its old position in
    the old endpoints' adjacency lists and is appended at the {e end} of the
    new ones, so adjacency insertion order reflects rewiring history.
    @raise Invalid_argument if the arc or either endpoint does not exist. *)

val out_arcs : ('v, 'a) t -> vertex -> arc list
(** Outgoing arcs of a vertex, in insertion order. *)

val in_arcs : ('v, 'a) t -> vertex -> arc list
(** Incoming arcs of a vertex, in insertion order. *)

val out_degree : ('v, 'a) t -> vertex -> int
val in_degree : ('v, 'a) t -> vertex -> int

val succs : ('v, 'a) t -> vertex -> vertex list
(** Successor vertices (with multiplicity, insertion order). *)

val preds : ('v, 'a) t -> vertex -> vertex list
(** Predecessor vertices (with multiplicity, insertion order). *)

val vertices : ('v, 'a) t -> vertex list
val arcs : ('v, 'a) t -> arc list

val iter_vertices : (vertex -> unit) -> ('v, 'a) t -> unit
val iter_arcs : (arc -> unit) -> ('v, 'a) t -> unit

val fold_vertices : (vertex -> 'acc -> 'acc) -> ('v, 'a) t -> 'acc -> 'acc
val fold_arcs : (arc -> 'acc -> 'acc) -> ('v, 'a) t -> 'acc -> 'acc

val find_arc : ('v, 'a) t -> src:vertex -> dst:vertex -> arc option
(** First arc from [src] to [dst] in insertion order, if any. *)

val map_labels :
  vertex:('v -> 'w) -> arc:('a -> 'b) -> ('v, 'a) t -> ('w, 'b) t
(** Structure-preserving relabeling; vertex and arc ids are unchanged. *)

val reverse : ('v, 'a) t -> ('v, 'a) t
(** [reverse g] has the same vertices and one arc [dst -> src] per arc
    [src -> dst] of [g], with the same ids and labels. *)
