type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make n x; len = n }

let length v = v.len

let is_empty v = v.len = 0

let check v i fn =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds [0,%d)" fn i v.len)

let get v i =
  check v i "get";
  v.data.(i)

let set v i x =
  check v i "set";
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else cap * 2 in
  let data' = Array.make cap' x in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    Some v.data.(v.len)
  end

let last v = if v.len = 0 then None else Some v.data.(v.len - 1)

let remove_first v p =
  let rec find i = if i >= v.len then -1 else if p v.data.(i) then i else find (i + 1) in
  let i = find 0 in
  if i < 0 then false
  else begin
    Array.blit v.data (i + 1) v.data i (v.len - i - 1);
    v.len <- v.len - 1;
    true
  end

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let of_list xs =
  let v = create () in
  List.iter (fun x -> ignore (push v x)) xs;
  v

let to_array v = Array.sub v.data 0 v.len

let map f v =
  let w = create () in
  iter (fun x -> ignore (push w (f x))) v;
  w

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len
