(** Strongly connected components (Tarjan's algorithm, iterative). *)

type result = {
  component : int array;
      (** component id per vertex; ids are [0 .. count-1] and respect reverse
          topological order of the condensation (a component's id is smaller
          than the ids of components it can reach... see {!components}) *)
  count : int;  (** number of components *)
}

val compute : ('v, 'a) Digraph.t -> result
(** [compute g] assigns every vertex its strongly-connected-component id.
    Tarjan numbers components in reverse topological order: if there is an arc
    from component [c1] to component [c2] (with [c1 <> c2]) then
    [c1 > c2]. *)

val components : result -> Digraph.vertex list array
(** [components r] lists the member vertices of each component, indexed by
    component id. *)

val is_strongly_connected : ('v, 'a) Digraph.t -> bool
(** [is_strongly_connected g] is true iff [g] has exactly one SCC (and at
    least one vertex). *)

val condensation : ('v, 'a) Digraph.t -> result * (unit, unit) Digraph.t
(** [condensation g] is the SCC result together with the acyclic quotient
    graph: one vertex per component, one arc per inter-component arc of [g]
    (parallel arcs preserved). *)
