(** Static diagnostics for [.soc] system descriptions ([ermes lint]).

    The linter runs two passes:

    - a {e declaration pass} over the raw token stream
      ({!Ermes_slm.Soc_format.tokenize}), which works even on files the
      strict parser rejects and catches name/shape mistakes at their exact
      line and column;
    - a {e semantic pass} on the parsed system (only when the file parses,
      validates, and the declaration pass found no errors), which builds the
      TMG and proves or refutes deadlock freedom, then probes statement
      orders for serialization warnings.

    Diagnostic codes are stable; tools may match on them:

    {v
    E101  channel endpoints do not name two distinct processes (self-loop)
    E102  undeclared or duplicate name (process or channel)
    E103  direction mismatch: gets/puts lists a channel the process does
          not read/write
    E104  arity mismatch: a gets/puts order is not a permutation of the
          process's input/output channels (missing or repeated channel)
    E105  structural defect: isolated process, or the system fails
          validation (no source, no sink, not on a source-to-sink path)
    E106  non-positive FIFO depth
    E107  statically proven deadlock: a token-free cycle exists (the
          witness channels and processes are printed)
    E108  resource limit: the input (or a single token) exceeds the
          configured byte ceiling ({!Ermes_slm.Soc_format.default_limits};
          ERMES_MAX_SOC_BYTES / ERMES_MAX_SOC_TOKEN)
    E109  invalid channel-kind parameters: malformed kind tail, multi-rate
          produce/consume out of range or depth below max(produce, consume),
          negative handshake hold ({!Ermes_slm.System.validate_kind})
    E110  inconsistent multi-rate weights: the SDF balance equations admit
          no common period, or the rate unfolding would be unreasonably
          large ({!Ermes_slm.System.repetition_vector})
    E111  non-positive channel latency
    W201  serialization warning: swapping two adjacent gets strictly
          improves the cycle time
    W202  serialization warning: swapping two adjacent puts strictly
          improves the cycle time
    W203  multi-rate depth below produce + consume - gcd(produce, consume):
          the buffer may deadlock the channel or throttle its rates
    v}

    Exit-code contract (implemented by the CLI): 0 when the report is clean
    (or warnings-only under [--warnings-ok]), 1 when the input is invalid
    beyond linting (unreadable file, or a parse failure no diagnostic
    explains), 2 when any error diagnostic was produced (warnings also exit
    2 unless [--warnings-ok]). *)

type severity = Error | Warning

type diagnostic = {
  code : string;  (** stable code, ["E101"] .. ["W203"] *)
  severity : severity;
  line : int;  (** 1-based; 0 for whole-system diagnostics *)
  col : int;  (** 1-based; 0 for whole-system diagnostics *)
  message : string;
}

type report = {
  file : string;
  diagnostics : diagnostic list;
      (** sorted by line, then column, then code *)
  checked_semantics : bool;
      (** whether the semantic pass (deadlock proof, serialization probes)
          ran — false when declaration errors or a parse failure made the
          system unavailable *)
}

val lint_string : ?file:string -> string -> (report, string) result
(** [lint_string text] lints a description. [Error msg] means the input is
    invalid beyond linting (a parse failure not explained by any
    diagnostic); callers should exit 1. *)

val lint_file : string -> (report, string) result
(** Like {!lint_string}, reading [path]. An unreadable file is [Error]. *)

val errors : report -> int
val warnings : report -> int

val pp_text : Format.formatter -> report -> unit
(** One line per diagnostic ([FILE:LINE:COL: CODE severity: message]),
    followed by a summary line. *)

val to_json : report -> string
(** Canonical single-line JSON:
    [{"file":...,"checked_semantics":...,"errors":N,"warnings":N,
    "diagnostics":[{"code":...,"severity":...,"line":N,"col":N,
    "message":...}]}]. *)

val of_json : string -> (report, string) result
(** Parses {!to_json} output back; [of_json (to_json r) = Ok r]. Accepts
    only the subset of JSON {!to_json} emits (objects, arrays, strings,
    integers, booleans). *)
