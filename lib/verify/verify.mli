(** Machine-checkable certificates for TMG analyses, and their independent
    checker.

    The solvers ({!Ermes_tmg.Howard}, {!Ermes_tmg.Karp},
    {!Ermes_tmg.Lawler}, {!Ermes_tmg.Liveness}) are the trusted-computing
    base of every verdict this toolkit emits — and with warm-started,
    cache-heavy solving (incremental sessions, policy reuse, potential
    reuse) that base has real state to get wrong. Each analysis therefore
    returns a small {e certificate} whose validity implies the verdict, and
    this module checks it {e independently}: the checker reads only the raw
    {!Ermes_tmg.Tmg.t} through its accessors and uses exact integer
    arithmetic — no solver code, no floats, no caches. A bug anywhere in
    the solver stack (or a stale cache) produces a certificate the checker
    rejects; it cannot produce a wrong verdict that still checks out.

    Certificate semantics (paper §3: deadlock freedom ⇔ no token-free
    cycle; cycle time = maximum cycle ratio):

    - {!Bounded}: the net is live and its maximum cycle ratio is exactly
      [ratio] = p/q. The {e witness} cycle attains p/q (lower bound); the
      {e potentials} prove no cycle exceeds it (upper bound): summing
      [pot(dst) - pot(src) >= q*delay - p*tokens] around any cycle gives
      [q*delay(C) <= p*tokens(C)]. The {e ranks} topologically order the
      token-free subgraph, proving liveness.
    - {!Deadlocked}: a token-free cycle — its transitions can never fire.
    - {!Acyclic}: a topological order of the whole net — no cycle exists,
      so no steady-state constraint (and trivially no deadlock).

    Every obligation is checked in O(E) with machine integers (delay and
    token magnitudes are bounded far below overflow, see
    {!Ermes_tmg.Ratio}). *)

module Tmg = Ermes_tmg.Tmg
module Ratio = Ermes_tmg.Ratio

type t =
  | Bounded of {
      ratio : Ratio.t;  (** claimed maximum cycle ratio p/q *)
      witness : Tmg.place list;
          (** a cycle (as places in arc order) attaining exactly p/q *)
      potentials : int array;
          (** per transition: [pot.(dst p) >= pot.(src p) + q*delay(dst p) -
              p*tokens(p)] for {e every} place [p] *)
      ranks : int array;
          (** per transition: [ranks.(src p) < ranks.(dst p)] for every
              token-free place [p] — liveness proof *)
    }
  | Deadlocked of { cycle : Tmg.place list }
      (** a token-free cycle, as places in arc order *)
  | Acyclic of { ranks : int array }
      (** per transition: [ranks.(src p) < ranks.(dst p)] for {e every}
          place [p] *)
  | Live of { ranks : int array }
      (** liveness proof alone (no cycle-time claim): [ranks.(src p) <
          ranks.(dst p)] for every {e token-free} place [p] *)

type violation = {
  obligation : string;  (** short name of the failed proof obligation *)
  detail : string;  (** what exactly did not hold *)
}

val check : Tmg.t -> t -> (unit, violation) result
(** [check tmg cert] validates every proof obligation of [cert] against the
    raw net. Uses only [Tmg] accessors and exact integer arithmetic; never
    calls solver code. O(E). *)

val check_csr : Ermes_tmg.Csr.t -> t -> (unit, violation) result
(** The same obligations as {!check}, read off a frozen {!Ermes_tmg.Csr.t}
    instead of the pointer net — allocation-free scans over the flat arrays,
    suitable for million-place nets. The freeze itself joins the trusted
    base: for full independence pass a fresh {!Ermes_tmg.Csr.of_tmg}, not a
    solver's internal state. [check_csr (Csr.of_tmg tmg) c] accepts exactly
    when [check tmg c] does. *)

val describe : t -> string
(** One-line human-readable summary ("bounded: ratio 12/1, witness of 5
    places, ..."). *)

val pp_violation : Format.formatter -> violation -> unit

(** {2 Constructors from solver outputs}

    These translate each solver's native result into a certificate. They may
    call solver code (only {!check} is independent); a disagreement between
    the pieces they assemble yields a certificate {!check} rejects, never a
    silently wrong one. *)

val of_howard :
  Tmg.t ->
  (Ermes_tmg.Howard.result, Ermes_tmg.Howard.error) result ->
  t

val of_howard_csr :
  Ermes_tmg.Csr.t ->
  (Ermes_tmg.Howard.result, Ermes_tmg.Howard.error) result ->
  t
(** Like {!of_howard} but the liveness / acyclicity rank vectors are
    computed on the CSR core ({!Ermes_tmg.Csr.live_ranks} /
    {!Ermes_tmg.Csr.topo_ranks}) — no pointer-net traversal anywhere on the
    certification path. On a freshly built net the resulting certificate is
    bit-identical to {!of_howard}'s. *)

val of_lawler :
  Tmg.t ->
  (Ratio.t * Tmg.place list * int array, Ermes_tmg.Lawler.error) result ->
  t
(** From {!Ermes_tmg.Lawler.certified}. A [Deadlock] outcome is completed
    with a token-free witness cycle from {!Ermes_tmg.Liveness}. *)

val of_karp_unit : Tmg.t -> (Ratio.t * Tmg.place list * int array) option -> t
(** From {!Ermes_tmg.Karp.of_unit_tmg_certified} on a unit-token net.
    [None] (acyclic graph) becomes {!Acyclic}. *)

val of_liveness : Tmg.t -> t
(** The liveness-only certificate: {!Deadlocked} with a token-free witness
    cycle on a dead net, {!Live} with the token-free-subgraph ranks
    otherwise — checkable proof of the deadlock verdict alone. *)
