module Tmg = Ermes_tmg.Tmg
module Ratio = Ermes_tmg.Ratio
module Howard = Ermes_tmg.Howard
module Lawler = Ermes_tmg.Lawler
module Liveness = Ermes_tmg.Liveness
module Csr = Ermes_tmg.Csr
module Traversal = Ermes_digraph.Traversal

type t =
  | Bounded of {
      ratio : Ratio.t;
      witness : Tmg.place list;
      potentials : int array;
      ranks : int array;
    }
  | Deadlocked of { cycle : Tmg.place list }
  | Acyclic of { ranks : int array }
  | Live of { ranks : int array }

type violation = { obligation : string; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "certificate rejected [%s]: %s" v.obligation v.detail

(* ------------------------------------------------------------------ *)
(* The independent checker. Everything below reads the net exclusively
   through Tmg accessors and computes in exact machine integers — no solver
   module is referenced. Magnitudes: delays <= ~1e6, tokens <= ~1e5 and
   potentials are integer combinations of O(V) of them, far below 2^62. *)
(* ------------------------------------------------------------------ *)

let fail obligation fmt =
  Format.kasprintf (fun detail -> Error { obligation; detail }) fmt

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* Place ids are dense 0..place_count-1 (arc ids of the underlying
   multigraph); reject anything outside before using one as an index. *)
let check_place_ids tmg obligation places =
  let m = Tmg.place_count tmg in
  let rec go = function
    | [] -> Ok ()
    | p :: rest ->
      if (p : Tmg.place :> int) < 0 || (p : Tmg.place :> int) >= m then
        fail obligation "place id %d outside the net (%d places)" (p :> int) m
      else go rest
  in
  go places

(* A witness must be a closed walk: each place's consumer is the next
   place's producer, cyclically. *)
let check_closed_walk tmg obligation places =
  let* () = check_place_ids tmg obligation places in
  match places with
  | [] -> fail obligation "empty witness cycle"
  | first :: _ ->
    let rec go = function
      | [] -> assert false
      | [ last ] ->
        if Tmg.place_dst tmg last = Tmg.place_src tmg first then Ok ()
        else
          fail obligation "witness does not close: %s ends at %s, %s starts at %s"
            (Tmg.place_name tmg last)
            (Tmg.transition_name tmg (Tmg.place_dst tmg last))
            (Tmg.place_name tmg first)
            (Tmg.transition_name tmg (Tmg.place_src tmg first))
      | p :: (q :: _ as rest) ->
        if Tmg.place_dst tmg p = Tmg.place_src tmg q then go rest
        else
          fail obligation "witness is not a walk: %s ends at %s but %s starts at %s"
            (Tmg.place_name tmg p)
            (Tmg.transition_name tmg (Tmg.place_dst tmg p))
            (Tmg.place_name tmg q)
            (Tmg.transition_name tmg (Tmg.place_src tmg q))
    in
    go places

let check_array_size tmg obligation what a =
  let n = Tmg.transition_count tmg in
  if Array.length a = n then Ok ()
  else fail obligation "%s has %d entries for %d transitions" what (Array.length a) n

(* ranks.(src) < ranks.(dst) for every place selected by [relevant]. *)
let check_ranks tmg obligation ~relevant ranks =
  let* () = check_array_size tmg obligation "rank vector" ranks in
  let rec go = function
    | [] -> Ok ()
    | p :: rest ->
      if relevant p then begin
        let u = Tmg.place_src tmg p and v = Tmg.place_dst tmg p in
        if ranks.(u) < ranks.(v) then go rest
        else
          fail obligation "place %s violates the order: rank(%s)=%d >= rank(%s)=%d"
            (Tmg.place_name tmg p) (Tmg.transition_name tmg u) ranks.(u)
            (Tmg.transition_name tmg v) ranks.(v)
      end
      else go rest
  in
  go (Tmg.places tmg)

let check_liveness_ranks tmg ranks =
  check_ranks tmg "liveness-ranks" ~relevant:(fun p -> Tmg.tokens tmg p = 0) ranks

let check tmg cert =
  match cert with
  | Deadlocked { cycle } ->
    let* () = check_closed_walk tmg "dead-cycle" cycle in
    let rec all_empty = function
      | [] -> Ok ()
      | p :: rest ->
        if Tmg.tokens tmg p = 0 then all_empty rest
        else
          fail "dead-cycle" "place %s carries %d tokens; the witness is not token-free"
            (Tmg.place_name tmg p) (Tmg.tokens tmg p)
    in
    all_empty cycle
  | Acyclic { ranks } -> check_ranks tmg "acyclic-ranks" ~relevant:(fun _ -> true) ranks
  | Live { ranks } -> check_liveness_ranks tmg ranks
  | Bounded { ratio; witness; potentials; ranks } ->
    let p = Ratio.num ratio and q = Ratio.den ratio in
    (* 1. liveness: no token-free cycle. *)
    let* () = check_liveness_ranks tmg ranks in
    (* 2. the witness attains the ratio exactly (lower bound). *)
    let* () = check_closed_walk tmg "witness-cycle" witness in
    let wsum =
      List.fold_left (fun acc pl -> acc + Tmg.delay tmg (Tmg.place_dst tmg pl)) 0 witness
    in
    let tsum = List.fold_left (fun acc pl -> acc + Tmg.tokens tmg pl) 0 witness in
    let* () =
      if tsum <= 0 then
        fail "witness-ratio" "witness cycle carries no token (delay %d)" wsum
      else Ok ()
    in
    let* () =
      if q * wsum = p * tsum then Ok ()
      else
        fail "witness-ratio" "witness attains %d/%d, certificate claims %d/%d" wsum tsum
          p q
    in
    (* 3. no cycle exceeds the ratio (upper bound): potential feasibility on
       every place. *)
    let* () = check_array_size tmg "potential-feasibility" "potential vector" potentials in
    let rec feasible = function
      | [] -> Ok ()
      | pl :: rest ->
        let u = Tmg.place_src tmg pl and v = Tmg.place_dst tmg pl in
        let reduced = (q * Tmg.delay tmg v) - (p * Tmg.tokens tmg pl) in
        if potentials.(u) + reduced <= potentials.(v) then feasible rest
        else
          fail "potential-feasibility"
            "place %s violates feasibility: pot(%s)=%d + (%d*%d - %d*%d) > pot(%s)=%d"
            (Tmg.place_name tmg pl) (Tmg.transition_name tmg u) potentials.(u) q
            (Tmg.delay tmg v) p (Tmg.tokens tmg pl) (Tmg.transition_name tmg v)
            potentials.(v)
    in
    feasible (Tmg.places tmg)

(* The same obligations, read off a frozen {!Csr.t} instead of the pointer
   net. The CSR freeze is itself part of the trusted base here, so callers
   wanting full independence should pass a {e fresh} [Csr.of_tmg] rather
   than a solver's internal arrays. [weight.(p)] is by construction
   [delay.(dst.(p))], the same quantity the pointer checker reads. *)
let check_csr (g : Csr.t) cert =
  let pid (p : Tmg.place) = (p :> int) in
  let check_place_ids obligation places =
    let rec go = function
      | [] -> Ok ()
      | p :: rest ->
        let i = pid p in
        if i < 0 || i >= g.Csr.m then
          fail obligation "place id %d outside the net (%d places)" i g.Csr.m
        else go rest
    in
    go places
  in
  let check_closed_walk obligation places =
    let* () = check_place_ids obligation places in
    match places with
    | [] -> fail obligation "empty witness cycle"
    | first :: _ ->
      let rec go = function
        | [] -> assert false
        | [ last ] ->
          if g.Csr.dst.(pid last) = g.Csr.src.(pid first) then Ok ()
          else
            fail obligation "witness does not close: %s ends at %s, %s starts at %s"
              g.Csr.pname.(pid last)
              g.Csr.tname.(g.Csr.dst.(pid last))
              g.Csr.pname.(pid first)
              g.Csr.tname.(g.Csr.src.(pid first))
        | p :: (q :: _ as rest) ->
          if g.Csr.dst.(pid p) = g.Csr.src.(pid q) then go rest
          else
            fail obligation "witness is not a walk: %s ends at %s but %s starts at %s"
              g.Csr.pname.(pid p)
              g.Csr.tname.(g.Csr.dst.(pid p))
              g.Csr.pname.(pid q)
              g.Csr.tname.(g.Csr.src.(pid q))
      in
      go places
  in
  let check_array_size obligation what a =
    if Array.length a = g.Csr.n then Ok ()
    else
      fail obligation "%s has %d entries for %d transitions" what (Array.length a)
        g.Csr.n
  in
  let check_ranks obligation ~relevant ranks =
    let* () = check_array_size obligation "rank vector" ranks in
    let rec go p =
      if p >= g.Csr.m then Ok ()
      else if relevant p then begin
        let u = g.Csr.src.(p) and v = g.Csr.dst.(p) in
        if ranks.(u) < ranks.(v) then go (p + 1)
        else
          fail obligation "place %s violates the order: rank(%s)=%d >= rank(%s)=%d"
            g.Csr.pname.(p) g.Csr.tname.(u) ranks.(u) g.Csr.tname.(v) ranks.(v)
      end
      else go (p + 1)
    in
    go 0
  in
  let check_liveness_ranks ranks =
    check_ranks "liveness-ranks" ~relevant:(fun p -> g.Csr.tokens.(p) = 0) ranks
  in
  match cert with
  | Deadlocked { cycle } ->
    let* () = check_closed_walk "dead-cycle" cycle in
    let rec all_empty = function
      | [] -> Ok ()
      | p :: rest ->
        if g.Csr.tokens.(pid p) = 0 then all_empty rest
        else
          fail "dead-cycle" "place %s carries %d tokens; the witness is not token-free"
            g.Csr.pname.(pid p)
            g.Csr.tokens.(pid p)
    in
    all_empty cycle
  | Acyclic { ranks } -> check_ranks "acyclic-ranks" ~relevant:(fun _ -> true) ranks
  | Live { ranks } -> check_liveness_ranks ranks
  | Bounded { ratio; witness; potentials; ranks } ->
    let p = Ratio.num ratio and q = Ratio.den ratio in
    let* () = check_liveness_ranks ranks in
    let* () = check_closed_walk "witness-cycle" witness in
    let wsum = List.fold_left (fun acc pl -> acc + g.Csr.weight.(pid pl)) 0 witness in
    let tsum = List.fold_left (fun acc pl -> acc + g.Csr.tokens.(pid pl)) 0 witness in
    let* () =
      if tsum <= 0 then
        fail "witness-ratio" "witness cycle carries no token (delay %d)" wsum
      else Ok ()
    in
    let* () =
      if q * wsum = p * tsum then Ok ()
      else
        fail "witness-ratio" "witness attains %d/%d, certificate claims %d/%d" wsum tsum
          p q
    in
    let* () = check_array_size "potential-feasibility" "potential vector" potentials in
    let rec feasible pl =
      if pl >= g.Csr.m then Ok ()
      else begin
        let u = g.Csr.src.(pl) and v = g.Csr.dst.(pl) in
        let reduced = (q * g.Csr.weight.(pl)) - (p * g.Csr.tokens.(pl)) in
        if potentials.(u) + reduced <= potentials.(v) then feasible (pl + 1)
        else
          fail "potential-feasibility"
            "place %s violates feasibility: pot(%s)=%d + (%d*%d - %d*%d) > pot(%s)=%d"
            g.Csr.pname.(pl) g.Csr.tname.(u) potentials.(u) q g.Csr.weight.(pl) p
            g.Csr.tokens.(pl) g.Csr.tname.(v) potentials.(v)
      end
    in
    feasible 0

let describe = function
  | Bounded { ratio; witness; potentials; _ } ->
    Printf.sprintf "bounded: max cycle ratio %s, witness of %d places, potentials over %d transitions"
      (Ratio.to_string ratio) (List.length witness) (Array.length potentials)
  | Deadlocked { cycle } ->
    Printf.sprintf "deadlocked: token-free witness cycle of %d places" (List.length cycle)
  | Acyclic { ranks } ->
    Printf.sprintf "acyclic: topological order over %d transitions" (Array.length ranks)
  | Live { ranks } ->
    Printf.sprintf "live: token-free subgraph order over %d transitions" (Array.length ranks)

(* ------------------------------------------------------------------ *)
(* Constructors. These may call solver code: if any assembled piece is
   inconsistent, the certificate simply fails [check] — constructors cannot
   manufacture validity. *)
(* ------------------------------------------------------------------ *)

(* A rank vector that deliberately satisfies nothing (all zeros): used when
   a solver claims a verdict the rank-producing pass contradicts, so the
   resulting certificate is rejected instead of silently patched. *)
let refuted_ranks tmg = Array.make (Tmg.transition_count tmg) 0

let live_ranks_or_refuted tmg =
  match Liveness.live_ranks tmg with Ok r -> r | Error _ -> refuted_ranks tmg

let acyclic_ranks tmg =
  match Traversal.topological_sort (Tmg.graph tmg) with
  | Ok order ->
    let ranks = Array.make (Tmg.transition_count tmg) 0 in
    List.iteri (fun i v -> ranks.(v) <- i) order;
    ranks
  | Error _ -> refuted_ranks tmg

let of_howard tmg = function
  | Ok (r : Howard.result) ->
    Bounded
      {
        ratio = r.Howard.cycle_time;
        witness = r.Howard.critical_places;
        potentials = r.Howard.potentials;
        ranks = live_ranks_or_refuted tmg;
      }
  | Error (Howard.Deadlock d) -> Deadlocked { cycle = d.Liveness.dead_places }
  | Error Howard.No_cycle -> Acyclic { ranks = acyclic_ranks tmg }

let csr_refuted_ranks (g : Csr.t) = Array.make g.Csr.n 0

let of_howard_csr (g : Csr.t) = function
  | Ok (r : Howard.result) ->
    let ranks =
      match Csr.live_ranks g with Ok r -> r | Error _ -> csr_refuted_ranks g
    in
    Bounded
      {
        ratio = r.Howard.cycle_time;
        witness = r.Howard.critical_places;
        potentials = r.Howard.potentials;
        ranks;
      }
  | Error (Howard.Deadlock d) -> Deadlocked { cycle = d.Liveness.dead_places }
  | Error Howard.No_cycle ->
    let ranks =
      match Csr.topo_ranks g with Ok r -> r | Error _ -> csr_refuted_ranks g
    in
    Acyclic { ranks }

let of_lawler tmg = function
  | Ok (ratio, witness, potentials) ->
    Bounded { ratio; witness; potentials; ranks = live_ranks_or_refuted tmg }
  | Error Lawler.Deadlock -> (
    match Liveness.find_dead_cycle tmg with
    | Some d -> Deadlocked { cycle = d.Liveness.dead_places }
    | None -> Deadlocked { cycle = [] } (* rejected by check *))
  | Error Lawler.No_cycle -> Acyclic { ranks = acyclic_ranks tmg }

let of_karp_unit tmg = function
  | Some (ratio, witness, potentials) ->
    Bounded { ratio; witness; potentials; ranks = live_ranks_or_refuted tmg }
  | None -> Acyclic { ranks = acyclic_ranks tmg }

let of_liveness tmg =
  match Liveness.live_ranks tmg with
  | Ok ranks -> Live { ranks }
  | Error d -> Deadlocked { cycle = d.Liveness.dead_places }
