module System = Ermes_slm.System
module Soc_format = Ermes_slm.Soc_format
module To_tmg = Ermes_slm.To_tmg
module Howard = Ermes_tmg.Howard
module Liveness = Ermes_tmg.Liveness
module Ratio = Ermes_tmg.Ratio

type severity = Error | Warning

type diagnostic = {
  code : string;
  severity : severity;
  line : int;
  col : int;
  message : string;
}

type report = {
  file : string;
  diagnostics : diagnostic list;
  checked_semantics : bool;
}

let errors r =
  List.length (List.filter (fun d -> d.severity = Error) r.diagnostics)

let warnings r =
  List.length (List.filter (fun d -> d.severity = Warning) r.diagnostics)

let compare_diag a b =
  let c = compare a.line b.line in
  if c <> 0 then c
  else
    let c = compare a.col b.col in
    if c <> 0 then c
    else
      let c = compare a.code b.code in
      if c <> 0 then c else compare a.message b.message

(* ------------------------------------------------------------------ *)
(* Declaration pass: three sweeps over the raw token stream, so every
   name/shape mistake is reported at its exact position even when the strict
   parser gives up on the file. *)
(* ------------------------------------------------------------------ *)

type decl_tables = {
  proc_pos : (string, int * int) Hashtbl.t;  (* name -> decl line, col *)
  chan_pos : (string, int * int) Hashtbl.t;
  chan_ends : (string, string * string) Hashtbl.t;  (* name -> src, dst *)
  ins : (string, string list) Hashtbl.t;  (* process -> input channel names *)
  outs : (string, string list) Hashtbl.t;  (* process -> output channel names *)
}

let declaration_pass lines =
  let diags = ref [] in
  let emit code severity line col fmt =
    Printf.ksprintf
      (fun message -> diags := { code; severity; line; col; message } :: !diags)
      fmt
  in
  let t =
    {
      proc_pos = Hashtbl.create 16;
      chan_pos = Hashtbl.create 16;
      chan_ends = Hashtbl.create 16;
      ins = Hashtbl.create 16;
      outs = Hashtbl.create 16;
    }
  in
  let append tbl key v =
    Hashtbl.replace tbl key ((try Hashtbl.find tbl key with Not_found -> []) @ [ v ])
  in
  (* Sweep 1: process declarations. *)
  List.iteri
    (fun i toks ->
      let line = i + 1 in
      match toks with
      | ("process", _) :: (name, ncol) :: _ ->
        if Hashtbl.mem t.proc_pos name then
          emit "E102" Error line ncol "duplicate process %S" name
        else Hashtbl.replace t.proc_pos name (line, ncol)
      | _ -> ())
    lines;
  (* Sweep 2: channel declarations (endpoints may name any process in the
     file, wherever it is declared). *)
  List.iteri
    (fun i toks ->
      let line = i + 1 in
      match toks with
      | ("channel", _) :: (name, ncol) :: (src, scol) :: (dst, dcol) :: rest ->
        let src_ok = Hashtbl.mem t.proc_pos src in
        let dst_ok = Hashtbl.mem t.proc_pos dst in
        if not src_ok then
          emit "E102" Error line scol "channel %S: undeclared process %S" name src;
        if not dst_ok then
          emit "E102" Error line dcol "channel %S: undeclared process %S" name dst;
        if src_ok && dst_ok && src = dst then
          emit "E101" Error line ncol
            "channel %S must connect two distinct processes, both ends are %S" name
            src;
        if Hashtbl.mem t.chan_pos name then
          emit "E102" Error line ncol "duplicate channel %S" name
        else begin
          Hashtbl.replace t.chan_pos name (line, ncol);
          Hashtbl.replace t.chan_ends name (src, dst);
          if src_ok then append t.outs src name;
          if dst_ok then append t.ins dst name
        end;
        (* Latency and kind parameters, through the same helpers the strict
           parser and [System.set_channel_kind] use — the checks cannot
           drift. E106 keeps its historical meaning (bad FIFO depth); other
           kinds report under E109; a throughput-limiting multi-rate depth
           is W203. *)
        (match rest with
         | ("latency", _) :: (l, lcol) :: tail ->
           (match int_of_string_opt l with
            | Some v when v < 1 ->
              emit "E111" Error line lcol "channel %S: latency must be >= 1, got %d"
                name v
            | _ -> ());
           (match Soc_format.parse_kind_tokens tail with
            | exception Soc_format.Parse_error (col, msg) ->
              emit "E109" Error line col "channel %S: %s" name msg
            | None -> ()
            | Some (kind, pcol) -> (
              match System.validate_kind kind with
              | Error msg -> (
                match kind with
                | System.Fifo d ->
                  emit "E106" Error line pcol "channel %S: %s, got %d" name msg d
                | _ -> emit "E109" Error line pcol "channel %S: %s" name msg)
              | Ok () -> (
                match kind with
                | System.Multi_rate { produce; consume; depth } ->
                  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
                  let safe = produce + consume - gcd produce consume in
                  if depth < safe then
                    emit "W203" Warning line pcol
                      "channel %S: depth %d is below produce + consume - \
                       gcd = %d and may deadlock or throttle the rates"
                      name depth safe
                | _ -> ())))
         | _ -> ())
      | _ -> ())
    lines;
  (* Sweep 3: references (select / gets / puts). *)
  let check_order line keyword code_dir ~listed ~expected pname =
    (* direction: every listed channel must be an [expected] channel of the
       process; arity: the list must be a permutation of [expected]. *)
    let all_known = ref true in
    List.iter
      (fun (ch, col) ->
        if not (Hashtbl.mem t.chan_pos ch) then begin
          all_known := false;
          emit "E102" Error line col "%s %s: undeclared channel %S" keyword pname ch
        end
        else if not (List.mem ch expected) then begin
          all_known := false;
          let src, dst = Hashtbl.find t.chan_ends ch in
          emit code_dir Error line col
            "%s %s: channel %S does not %s %s (it connects %s -> %s)" keyword pname
            ch
            (if keyword = "gets" then "feed" else "leave")
            pname src dst
        end)
      listed;
    if !all_known then begin
      let names = List.map fst listed in
      let missing = List.filter (fun c -> not (List.mem c names)) expected in
      let repeated =
        List.sort_uniq compare
          (List.filter (fun c -> List.length (List.filter (( = ) c) names) > 1) names)
      in
      if missing <> [] || repeated <> [] then begin
        let parts = [] in
        let parts =
          if missing = [] then parts
          else Printf.sprintf "missing %s" (String.concat ", " missing) :: parts
        in
        let parts =
          if repeated = [] then parts
          else Printf.sprintf "repeated %s" (String.concat ", " repeated) :: parts
        in
        let col = match listed with (_, c) :: _ -> c | [] -> 1 in
        emit "E104" Error line col
          "%s %s: not a permutation of the process's %s channels (%s)" keyword pname
          (if keyword = "gets" then "input" else "output")
          (String.concat "; " (List.rev parts))
      end
    end
  in
  List.iteri
    (fun i toks ->
      let line = i + 1 in
      match toks with
      | [ ("select", _); (pname, pcol); _ ] ->
        if not (Hashtbl.mem t.proc_pos pname) then
          emit "E102" Error line pcol "select: undeclared process %S" pname
      | ("gets", _) :: (pname, pcol) :: chs ->
        if not (Hashtbl.mem t.proc_pos pname) then
          emit "E102" Error line pcol "gets: undeclared process %S" pname
        else
          check_order line "gets" "E103" ~listed:chs
            ~expected:(try Hashtbl.find t.ins pname with Not_found -> [])
            pname
      | ("puts", _) :: (pname, pcol) :: chs ->
        if not (Hashtbl.mem t.proc_pos pname) then
          emit "E102" Error line pcol "puts: undeclared process %S" pname
        else
          check_order line "puts" "E103" ~listed:chs
            ~expected:(try Hashtbl.find t.outs pname with Not_found -> [])
            pname
      | _ -> ())
    lines;
  (* Isolated processes: declared but touched by no channel. *)
  Hashtbl.iter
    (fun name (line, col) ->
      if
        (not (Hashtbl.mem t.ins name))
        && not (Hashtbl.mem t.outs name)
      then
        emit "E105" Error line col "process %S has no channels (isolated)" name)
    t.proc_pos;
  !diags

(* ------------------------------------------------------------------ *)
(* Semantic pass: deadlock proof + serialization probes on the parsed
   system. *)
(* ------------------------------------------------------------------ *)

let semantic_pass sys proc_pos =
  let diags = ref [] in
  let emit code severity line col fmt =
    Printf.ksprintf
      (fun message -> diags := { code; severity; line; col; message } :: !diags)
      fmt
  in
  match System.repetition_vector sys with
  | Error msg ->
    (* Inconsistent multi-rate weights: no common period, no unfolding, no
       TMG — its own code, distinct from the structural E105. *)
    emit "E110" Error 0 0 "%s" msg;
    !diags
  | Ok _ ->
  match System.validate sys with
  | Error msg ->
    emit "E105" Error 0 0 "invalid system structure: %s" msg;
    !diags
  | Ok () ->
    let mapping = To_tmg.build sys in
    let tmg = mapping.To_tmg.tmg in
    (match Liveness.find_dead_cycle tmg with
    | Some dead ->
      let places =
        String.concat " "
          (List.map (Ermes_tmg.Tmg.place_name tmg) dead.Liveness.dead_places)
      in
      let procs =
        To_tmg.processes_on_cycle mapping dead.Liveness.dead_transitions
        |> List.map (System.process_name sys)
      in
      let chans =
        To_tmg.channels_on_cycle mapping dead.Liveness.dead_transitions
        |> List.map (System.channel_name sys)
      in
      emit "E107" Error 0 0
        "statically proven deadlock: token-free cycle [%s] (processes: %s; channels: %s)"
        places
        (String.concat " " procs)
        (String.concat " " chans)
    | None ->
      (* Live: probe every adjacent statement swap for a strict cycle-time
         improvement, re-using one warm solver across probes. *)
      let solver = Howard.make_solver tmg in
      (match Howard.solve solver with
      | Error _ -> ()  (* acyclic or (impossible here) deadlocked: no probes *)
      | Ok base ->
        let base_ct = base.Howard.cycle_time in
        let probe p code keyword order set_order =
          let order = Array.of_list (order sys p) in
          let n = Array.length order in
          for i = 0 to n - 2 do
            let swapped = Array.copy order in
            let tmp = swapped.(i) in
            swapped.(i) <- swapped.(i + 1);
            swapped.(i + 1) <- tmp;
            set_order sys p (Array.to_list swapped);
            To_tmg.rethread mapping sys p;
            (match Howard.solve solver with
            | Ok r when Ratio.( < ) r.Howard.cycle_time base_ct ->
              let line, col =
                try Hashtbl.find proc_pos (System.process_name sys p)
                with Not_found -> (0, 0)
              in
              emit code Warning line col
                "process %s: swapping adjacent %s of %s and %s improves the cycle time %s -> %s"
                (System.process_name sys p)
                keyword
                (System.channel_name sys order.(i))
                (System.channel_name sys order.(i + 1))
                (Ratio.to_string base_ct)
                (Ratio.to_string r.Howard.cycle_time)
            | _ -> ());
            set_order sys p (Array.to_list order);
            To_tmg.rethread mapping sys p
          done
        in
        List.iter
          (fun p ->
            probe p "W201" "gets" System.get_order System.set_get_order;
            probe p "W202" "puts" System.put_order System.set_put_order)
          (System.processes sys)));
    !diags

(* ------------------------------------------------------------------ *)

let lint_string ?(file = "<stdin>") text =
  let limits = Soc_format.default_limits () in
  if String.length text > limits.Soc_format.max_bytes then
    (* Over the byte ceiling: diagnose and stop — tokenizing would build the
       very allocations the limit exists to prevent. *)
    Ok
      {
        file;
        diagnostics =
          [
            {
              code = "E108";
              severity = Error;
              line = 0;
              col = 0;
              message =
                Printf.sprintf
                  "input is %d bytes, over the %d-byte limit (raise \
                   ERMES_MAX_SOC_BYTES to lint larger descriptions)"
                  (String.length text) limits.Soc_format.max_bytes;
            };
          ];
        checked_semantics = false;
      }
  else
  let lines =
    List.map Soc_format.tokenize (String.split_on_char '\n' text)
  in
  let limit_diags =
    List.concat
      (List.mapi
         (fun i toks ->
           List.filter_map
             (fun (tok, col) ->
               if String.length tok > limits.Soc_format.max_token then
                 Some
                   {
                     code = "E108";
                     severity = Error;
                     line = i + 1;
                     col;
                     message =
                       Printf.sprintf
                         "token is %d bytes, over the %d-byte limit \
                          (ERMES_MAX_SOC_TOKEN)"
                         (String.length tok) limits.Soc_format.max_token;
                   }
               else None)
             toks)
         lines)
  in
  let decl_diags = limit_diags @ declaration_pass lines in
  let decl_errors = List.exists (fun d -> d.severity = Error) decl_diags in
  let parsed = Soc_format.parse text in
  match (parsed, decl_errors) with
  | Stdlib.Error msg, false ->
    (* The strict parser rejected the file and no diagnostic explains why:
       the input is invalid beyond linting. *)
    Stdlib.Error msg
  | Stdlib.Error _, true ->
    Ok
      {
        file;
        diagnostics = List.sort compare_diag decl_diags;
        checked_semantics = false;
      }
  | Stdlib.Ok sys, _ ->
    if decl_errors then
      Ok
        {
          file;
          diagnostics = List.sort compare_diag decl_diags;
          checked_semantics = false;
        }
    else begin
      (* Rebuild the process-position table for warning locations. *)
      let proc_pos = Hashtbl.create 16 in
      List.iteri
        (fun i toks ->
          match toks with
          | ("process", _) :: (name, ncol) :: _ ->
            if not (Hashtbl.mem proc_pos name) then
              Hashtbl.replace proc_pos name (i + 1, ncol)
          | _ -> ())
        lines;
      let sem_diags = semantic_pass sys proc_pos in
      Ok
        {
          file;
          diagnostics = List.sort compare_diag (decl_diags @ sem_diags);
          checked_semantics = true;
        }
    end

let lint_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> lint_string ~file:path text
  | exception Sys_error m -> Stdlib.Error m

(* ------------------------------------------------------------------ *)
(* Output. *)
(* ------------------------------------------------------------------ *)

let pp_text ppf r =
  List.iter
    (fun d ->
      let sev = match d.severity with Error -> "error" | Warning -> "warning" in
      if d.line = 0 then
        Format.fprintf ppf "%s: %s %s: %s@." r.file d.code sev d.message
      else
        Format.fprintf ppf "%s:%d:%d: %s %s: %s@." r.file d.line d.col d.code sev
          d.message)
    r.diagnostics;
  Format.fprintf ppf "%s: %d error(s), %d warning(s)@." r.file (errors r)
    (warnings r)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "{\"file\":\"%s\",\"checked_semantics\":%b,\"errors\":%d,\"warnings\":%d,\"diagnostics\":["
    (escape r.file) r.checked_semantics (errors r) (warnings r);
  List.iteri
    (fun i d ->
      if i > 0 then pf ",";
      pf "{\"code\":\"%s\",\"severity\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
        (escape d.code)
        (match d.severity with Error -> "error" | Warning -> "warning")
        d.line d.col (escape d.message))
    r.diagnostics;
  pf "]}";
  Buffer.contents buf

(* A recursive-descent parser for exactly the JSON subset [to_json] emits. *)
type json =
  | Jobj of (string * json) list
  | Jarr of json list
  | Jstr of string
  | Jint of int
  | Jbool of bool

exception Bad_json of string

let parse_json text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> raise (Bad_json (Printf.sprintf "expected %C at %d, got %C" c !pos d))
    | None -> raise (Bad_json (Printf.sprintf "expected %C at end of input" c))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Bad_json "unterminated string");
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        if !pos >= n then raise (Bad_json "unterminated escape");
        let e = text.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 > n then raise (Bad_json "truncated \\u escape");
          let hex = String.sub text !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x100 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> raise (Bad_json "non-latin1 \\u escape unsupported")
          | None -> raise (Bad_json "bad \\u escape"))
        | c -> raise (Bad_json (Printf.sprintf "bad escape \\%c" c)));
        go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Jobj [] end
      else begin
        let rec members acc =
          let key = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); skip_ws (); members ((key, v) :: acc)
          | Some '}' -> advance (); List.rev ((key, v) :: acc)
          | _ -> raise (Bad_json "expected ',' or '}' in object")
        in
        Jobj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Jarr [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> raise (Bad_json "expected ',' or ']' in array")
        in
        Jarr (elements [])
      end
    | Some 't' ->
      if !pos + 4 <= n && String.sub text !pos 4 = "true" then begin
        pos := !pos + 4;
        Jbool true
      end
      else raise (Bad_json "bad literal")
    | Some 'f' ->
      if !pos + 5 <= n && String.sub text !pos 5 = "false" then begin
        pos := !pos + 5;
        Jbool false
      end
      else raise (Bad_json "bad literal")
    | Some ('-' | '0' .. '9') ->
      let start = !pos in
      if peek () = Some '-' then advance ();
      while !pos < n && match text.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      (match int_of_string_opt (String.sub text start (!pos - start)) with
      | Some i -> Jint i
      | None -> raise (Bad_json "bad number"))
    | Some c -> raise (Bad_json (Printf.sprintf "unexpected %C" c))
    | None -> raise (Bad_json "unexpected end of input")
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad_json "trailing garbage");
  v

let of_json text =
  let field obj key =
    match List.assoc_opt key obj with
    | Some v -> v
    | None -> raise (Bad_json (Printf.sprintf "missing field %S" key))
  in
  let str = function Jstr s -> s | _ -> raise (Bad_json "expected string") in
  let int = function Jint i -> i | _ -> raise (Bad_json "expected integer") in
  let boolean = function Jbool b -> b | _ -> raise (Bad_json "expected boolean") in
  match parse_json text with
  | exception Bad_json m -> Stdlib.Error m
  | Jobj fields -> (
    try
      let diagnostics =
        match field fields "diagnostics" with
        | Jarr items ->
          List.map
            (function
              | Jobj d ->
                {
                  code = str (field d "code");
                  severity =
                    (match str (field d "severity") with
                    | "error" -> Error
                    | "warning" -> Warning
                    | s -> raise (Bad_json (Printf.sprintf "bad severity %S" s)));
                  line = int (field d "line");
                  col = int (field d "col");
                  message = str (field d "message");
                }
              | _ -> raise (Bad_json "diagnostic must be an object"))
            items
        | _ -> raise (Bad_json "diagnostics must be an array")
      in
      Ok
        {
          file = str (field fields "file");
          checked_semantics = boolean (field fields "checked_semantics");
          diagnostics;
        }
    with Bad_json m -> Stdlib.Error m)
  | _ -> Stdlib.Error "top-level value must be an object"
