(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (DAC'14), plus the ablations called out in DESIGN.md.

   Usage:  dune exec bench/main.exe              (full run, a few minutes)
           dune exec bench/main.exe -- --quick   (skip the 10k-process sweep)
           dune exec bench/main.exe -- SECTION   (one section by name)
           dune exec bench/main.exe -- --json FILE   (machine-readable metrics)
           dune exec bench/main.exe -- --jobs J      (fan sweeps over J domains)

   Sections: table1 fig2 fig3 fig4 m1 fig6-timing fig6-area scalability
             ablation-mcm ablation-ordering ablation-dse incremental csr rtl
             scale runtime chaos micro   *)

module System = Ermes_slm.System
module Motivating = Ermes_slm.Motivating
module Sim = Ermes_slm.Sim
module To_tmg = Ermes_slm.To_tmg
module Fsm = Ermes_slm.Fsm
module Tmg = Ermes_tmg.Tmg
module Howard = Ermes_tmg.Howard
module Karp = Ermes_tmg.Karp
module Cycles = Ermes_tmg.Cycles
module Firing = Ermes_tmg.Firing
module Ratio = Ermes_tmg.Ratio
module Perf = Ermes_core.Perf
module Order = Ermes_core.Order
module Oracle = Ermes_core.Oracle
module Explore = Ermes_core.Explore
module Frontier = Ermes_core.Frontier
module Soc = Ermes_mpeg2.Soc
module Behaviors = Ermes_mpeg2.Behaviors
module Generate = Ermes_synth.Generate
module Incremental = Ermes_core.Incremental
module Parallel = Ermes_parallel.Parallel

let quick = Array.exists (( = ) "--quick") Sys.argv

(* Value-taking flags, prescanned from argv (the section filter in [main]
   skips flag/value pairs). *)
let argv_value flag =
  let rec go = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: tl -> go tl
    | [] -> None
  in
  go (Array.to_list Sys.argv)

let json_file = argv_value "--json"

let jobs =
  match argv_value "--jobs" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | Some _ | None ->
      prerr_endline "bench: --jobs expects a positive integer";
      exit 1)
  | None -> Parallel.default_jobs ()

(* Machine-readable outcomes, dumped as a flat JSON object by --json FILE:
   per-section wall-clock, headline cycle-time/area/speedup numbers, and the
   microbenchmark ns/run estimates. *)
let metrics : (string * float) list ref = ref []
let metric key v = metrics := (key, v) :: !metrics

let write_json file =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  let entries = List.rev !metrics in
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ",\n";
      let v =
        if Float.is_nan v then "null" (* NaN is not JSON *)
        else if Float.is_integer v && Float.abs v < 1e15 then
          Printf.sprintf "%.0f" v
        else Printf.sprintf "%.6g" v
      in
      Printf.bprintf b "  %S: %s" k v)
    entries;
  Buffer.add_string b "\n}\n";
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc (Buffer.contents b))

let hr title =
  Format.printf "@.======================================================================@.";
  Format.printf "== %s@." title;
  Format.printf "======================================================================@."

let row fmt = Format.printf fmt

let paper fmt = Format.printf ("  paper:      " ^^ fmt ^^ "@.")
let repro fmt = Format.printf ("  reproduced: " ^^ fmt ^^ "@.")

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let analyze_exn sys =
  match Perf.analyze sys with
  | Ok a -> a
  | Error f -> Format.kasprintf failwith "%a" (Perf.pp_failure sys) f

(* The characterized MPEG-2 system and its frontier, shared by sections. *)
let mpeg2 = lazy (Soc.build ())
let mpeg2_frontier = lazy (Frontier.system_pareto (Lazy.force mpeg2))
let m1_point = lazy (Frontier.fastest (Lazy.force mpeg2_frontier))
let m2_point =
  (* The paper's M2 sits at CT ratio 3597/1906 = 1.887 above M1. *)
  lazy (Frontier.at_cycle_time_ratio (Lazy.force mpeg2_frontier) (3597. /. 1906.))

(* ---------------------------------------------------------------- table 1 *)

let table1 () =
  hr "Table 1 - experimental setup of the MPEG-2 encoder";
  let sys = Lazy.force mpeg2 in
  let s = Soc.stats sys in
  row "  %-28s %-22s %s@." "" "paper" "reproduced";
  row "  %-28s %-22s %d@." "processes" "26" s.Soc.worker_processes;
  row "  %-28s %-22s %d@." "channels" "60" s.Soc.channels;
  row "  %-28s %-22s %dx%d@." "image size (pixels)" "352x240" Behaviors.frame_width
    Behaviors.frame_height;
  row "  %-28s %-22s %d@." "Pareto points" "171" s.Soc.pareto_points;
  row "  %-28s %-22s %d..%d@." "channel latencies (cycles)" "1..5,280"
    s.Soc.min_channel_latency s.Soc.max_channel_latency;
  row "  %-28s %-22s %s@." "HLS knobs" "pipelining, unrolling, .."
    "unroll x pipeline x sharing";
  row "  %-28s %-22s %.3g@." "order combinations" "(not reported)" s.Soc.order_combinations;
  row "  %-28s %-22s %s@." "SystemC LoC" "~9,000" "n/a (OCaml model)"

(* ------------------------------------------------------------------ fig 2 *)

let fig2 () =
  hr "Fig. 2 / SS2 - motivating example: orders, deadlock, FSM";
  let sys = Motivating.system () in
  paper "36 possible order combinations";
  repro "%.0f combinations" (System.order_combinations sys);
  (* The deadlocking order of SS2. *)
  let dead = Motivating.deadlocking () in
  (match Perf.analyze dead with
   | Error (Perf.Deadlock d) ->
     paper "P6 reading (g,d,e) deadlocks: P2 waits on d, P6 on g, P5 on f";
     repro "token-free cycle through channels [%s]"
       (String.concat " " (List.map (System.channel_name dead) d.Perf.dead_channels))
   | _ -> repro "ERROR: deadlock not detected");
  (match Sim.steady_cycle_time dead with
   | Ok (Sim.Deadlock d) ->
     repro "cycle-accurate simulation confirms: %d processes blocked at cycle %d"
       (List.length d.Sim.blocked) d.Sim.at_cycle
   | Ok _ | Error _ -> repro "ERROR: simulation missed the deadlock");
  (* Fig 2b: the FSM of P2. *)
  let p2 = Option.get (System.find_process sys "P2") in
  let fsm = Fsm.of_process sys p2 in
  paper "P2's FSM: one state per get/put with wait self-loops + computation chain";
  repro "P2's FSM: %d I/O states, %d computation states, 1 reset"
    (Fsm.io_state_count fsm) (Fsm.compute_state_count fsm)

(* ------------------------------------------------------------------ fig 3 *)

let fig3 () =
  hr "Fig. 3 / SS3 - TMG model and performance analysis without simulation";
  let sys = Motivating.suboptimal () in
  let m = To_tmg.build sys in
  let tmg = m.To_tmg.tmg in
  paper "one transition per channel and per computation; put/get places; 1 token per process";
  repro "%d transitions, %d places, %d tokens (7 processes, 8 channels)"
    (Tmg.transition_count tmg) (Tmg.place_count tmg) (Tmg.total_tokens tmg);
  let res, t = time (fun () -> analyze_exn sys) in
  repro "Howard's algorithm: cycle time %s in %.3f ms (no simulation needed)"
    (Ratio.to_string res.Perf.cycle_time) (1000. *. t);
  (match Firing.measured_cycle_time tmg ~rounds:100 with
   | Some r -> repro "max-plus earliest-firing execution agrees: %s" (Ratio.to_string r)
   | None -> repro "ERROR: no steady state");
  (match Sim.steady_cycle_time sys with
   | Ok (Sim.Period r) -> repro "discrete-event simulation agrees: %s" (Ratio.to_string r)
   | _ -> repro "ERROR: simulation disagreed");
  match Ermes_rtl.Soc_rtl.measured_cycle_time sys with
  | Some r -> repro "generated RTL (interpreted cycle by cycle) agrees: %s" (Ratio.to_string r)
  | None -> repro "ERROR: RTL stalled"

(* ------------------------------------------------------------------ fig 4 *)

let fig4 () =
  hr "Fig. 4 / SS4 - channel ordering: labels, optimal order, CT 20 -> 12";
  let sys = Motivating.suboptimal () in
  let before = analyze_exn sys in
  paper "suboptimal ordering: cycle time 20, throughput 0.05";
  repro "cycle time %s, throughput %s" (Ratio.to_string before.Perf.cycle_time)
    (Ratio.to_string (Perf.throughput before));
  let lb = Order.apply sys in
  paper "forward labels: a(3,1) f(13,2) b(13,3) d(13,4) then {17,17} e(19,7) h(22,8)";
  let show name =
    let c = Option.get (System.find_channel sys name) in
    Format.sprintf "%s(%d,%d)" name lb.Order.head_weight.(c) lb.Order.head_timestamp.(c)
  in
  repro "forward labels: %s" (String.concat " " (List.map show [ "a"; "f"; "b"; "d"; "g"; "c"; "e"; "h" ]));
  let show_tail name =
    let c = Option.get (System.find_channel sys name) in
    Format.sprintf "%s(%d)" name lb.Order.tail_weight.(c)
  in
  paper "tail weights: h=2 d=g=e=10 f=13 c=13 b=16 a=23";
  repro "tail weights: %s" (String.concat " " (List.map show_tail [ "h"; "d"; "g"; "e"; "f"; "c"; "b"; "a" ]));
  let p2 = Option.get (System.find_process sys "P2") in
  let p6 = Option.get (System.find_process sys "P6") in
  paper "final order: P2 writes (b,f,d); P6 reads (d,g,e)";
  repro "final order: P2 writes (%s); P6 reads (%s)"
    (String.concat "," (List.map (System.channel_name sys) (System.put_order sys p2)))
    (String.concat "," (List.map (System.channel_name sys) (System.get_order sys p6)));
  let after = analyze_exn sys in
  paper "optimal cycle time 12 (40%% better than 20)";
  repro "cycle time %s (%.0f%% better)" (Ratio.to_string after.Perf.cycle_time)
    (100. *. (1. -. (Ratio.to_float after.Perf.cycle_time /. Ratio.to_float before.Perf.cycle_time)));
  match Oracle.search (Motivating.system ()) with
  | Some o ->
    repro "exhaustive check over all %d orders: optimum %s, %d orders deadlock"
      o.Oracle.evaluated (Ratio.to_string o.Oracle.best_cycle_time) o.Oracle.deadlocked
  | None -> repro "ERROR: oracle failed"

(* ----------------------------------------------------- M1 reordering (SS6) *)

let m1 () =
  hr "SS6 - implementation M1: reordering alone (paper: ~5% CT, no area cost)";
  let sys = System.copy (Lazy.force mpeg2) in
  let m1p = Lazy.force m1_point in
  let m2p = Lazy.force m2_point in
  row "  frontier: %d system-level Pareto points (Liu-Carloni preprocessing)@."
    (List.length (Lazy.force mpeg2_frontier));
  paper "M1: CT 1,906 KCycles, area 2.267 mm2; M2: CT 3,597 KC, 1.562 mm2 (ratio 1.89)";
  repro "M1: CT %s cycles, area %.3f mm2; M2: CT %s, %.3f mm2 (ratio %.2f)"
    (Ratio.to_string m1p.Frontier.cycle_time) m1p.Frontier.area
    (Ratio.to_string m2p.Frontier.cycle_time) m2p.Frontier.area
    (Ratio.to_float m2p.Frontier.cycle_time /. Ratio.to_float m1p.Frontier.cycle_time);
  (* From the conservative baseline. *)
  Frontier.select sys m1p;
  Order.conservative sys;
  let before, after = Explore.reorder_only sys in
  repro "from the conservative baseline: CT %s -> %s (%.1f%%), area unchanged"
    (Ratio.to_string before) (Ratio.to_string after)
    (100. *. (1. -. (Ratio.to_float after /. Ratio.to_float before)));
  (* Distribution over random live designer orders. Each seed is independent
     given its own copy, so the sweep fans out over [jobs] domains; the
     result set is identical for any jobs value. *)
  let n = if quick then 30 else 100 in
  let gains =
    Parallel.map ~jobs
      (fun (seed, sys) ->
        Order.conservative_random ~seed sys;
        let b, a = Explore.reorder_only sys in
        100. *. (1. -. (Ratio.to_float a /. Ratio.to_float b)))
      (List.init n (fun i -> (i + 1, System.copy sys)))
  in
  let gains = List.sort compare gains in
  let pct k = List.nth gains (k * (List.length gains - 1) / 100) in
  paper "reordering resolved unnecessary serialization: 5%% CT improvement";
  repro "over %d random live designer orders: median %.1f%%, p75 %.1f%%, max %.1f%%" n
    (pct 50) (pct 75) (pct 100);
  metric "m1.gain_pct.median" (pct 50);
  metric "m1.gain_pct.max" (pct 100)

(* ----------------------------------------------------------- fig 6 (both) *)

let run_exploration ~label ~paper_line ~tct_frac sys m2p =
  Frontier.select sys m2p;
  Order.conservative sys;
  let m2ct = Ratio.to_float m2p.Frontier.cycle_time in
  let tct = int_of_float (m2ct *. tct_frac) in
  let trace, t = time (fun () -> Explore.run ~tct sys) in
  Format.printf "  target cycle time: %d (%.3f x M2's CT); ERMES ran %.1f s@." tct tct_frac t;
  Format.printf "  iter  action               cycle-time     area(mm2)@.";
  List.iter
    (fun (s : Explore.step) ->
      Format.printf "   %2d   %-20s %-12s   %6.3f%s@." s.Explore.iteration
        (match s.Explore.action with
         | Explore.Initial -> "initial"
         | Explore.Timing_optimization -> "timing-optimization"
         | Explore.Area_recovery -> "area-recovery"
         | Explore.Converged -> "converged")
        (Ratio.to_string s.Explore.cycle_time)
        s.Explore.area
        (if s.Explore.reordered then "  (reordered)" else ""))
    trace.Explore.steps;
  paper "%s" paper_line;
  let speedup = m2ct /. Ratio.to_float (Explore.final_cycle_time trace) in
  let area_change = 100. *. ((Explore.final_area trace /. m2p.Frontier.area) -. 1.) in
  let ct_change = 100. *. ((Ratio.to_float (Explore.final_cycle_time trace) /. m2ct) -. 1.) in
  repro "target %s; speed-up %.2fx; CT %+.1f%%; area %+.1f%% vs M2"
    (if trace.Explore.met then "met" else "missed")
    speedup ct_change area_change;
  metric (Printf.sprintf "fig6.%s.met" label) (if trace.Explore.met then 1. else 0.);
  metric (Printf.sprintf "fig6.%s.cycle_time" label)
    (Ratio.to_float (Explore.final_cycle_time trace));
  metric (Printf.sprintf "fig6.%s.area_mm2" label) (Explore.final_area trace);
  metric (Printf.sprintf "fig6.%s.seconds" label) t

let fig6_timing () =
  hr "Fig. 6 left - timing optimization from M2 (paper TCT = 2,000 KC = 0.556 x M2)";
  run_exploration ~label:"timing"
    ~paper_line:"meets TCT after 4 iterations: 2x speed-up, +44.6% area"
    ~tct_frac:(2000. /. 3597.)
    (System.copy (Lazy.force mpeg2))
    (Lazy.force m2_point)

let fig6_area () =
  hr "Fig. 6 right - area recovery from M2 (paper TCT = 4,000 KC = 1.112 x M2)";
  run_exploration ~label:"area"
    ~paper_line:"-32.5% area for <1% CT degradation after 3 iterations"
    ~tct_frac:(4000. /. 3597.)
    (System.copy (Lazy.force mpeg2))
    (Lazy.force m2_point)

(* ------------------------------------------------------------- scalability *)

let scalability () =
  hr "SS6 - scalability on synthetic SoCs (paper: up to 10,000 processes, minutes)";
  let sizes =
    if quick then [ (100, 150); (1000, 1500); (3000, 4500) ]
    else [ (100, 150); (1000, 1500); (3000, 4500); (10_000, 15_000) ]
  in
  row "  procs  chans   generate   analyze    order+verify   total@.";
  List.iter
    (fun (np, nc) ->
      let sys, tgen = time (fun () -> Generate.scaled ~processes:np ~channels:nc ()) in
      let _, tana = time (fun () -> analyze_exn sys) in
      let _, tord = time (fun () -> Order.apply_safe sys) in
      metric (Printf.sprintf "scalability.%d.analyze_s" np) tana;
      metric (Printf.sprintf "scalability.%d.order_s" np) tord;
      row "  %5d  %5d   %7.2fs   %7.2fs   %10.2fs   %6.2fs@." np
        (System.channel_count sys) tgen tana tord (tgen +. tana +. tord))
    sizes;
  paper "ERMES takes on the order of a few minutes in the worst cases";
  repro "the largest instance completes in seconds on one core"

(* ------------------------------------------------------------ ablation MCM *)

let ablation_mcm () =
  hr "Ablation - minimum cycle mean/ratio algorithms (paper SS3 cites [2,5,12])";
  (* Agreement sweep on random live TMGs. *)
  let rng = Ermes_synth.Prng.create ~seed:99 in
  let mismatches = ref 0 and nets = ref 0 in
  for _ = 1 to 300 do
    let n = Ermes_synth.Prng.int_range rng ~lo:2 ~hi:7 in
    let tmg = Tmg.create () in
    let ts = List.init n (fun _ -> Tmg.add_transition tmg ~delay:(Ermes_synth.Prng.int_range rng ~lo:0 ~hi:9) ()) in
    let arr = Array.of_list ts in
    for i = 0 to n - 1 do
      ignore (Tmg.add_place tmg ~src:arr.(i) ~dst:arr.((i + 1) mod n) ~tokens:1 ())
    done;
    for _ = 1 to Ermes_synth.Prng.int_range rng ~lo:0 ~hi:6 do
      ignore
        (Tmg.add_place tmg
           ~src:arr.(Ermes_synth.Prng.int_range rng ~lo:0 ~hi:(n - 1))
           ~dst:arr.(Ermes_synth.Prng.int_range rng ~lo:0 ~hi:(n - 1))
           ~tokens:1 ())
    done;
    incr nets;
    match (Howard.cycle_time tmg, Karp.of_unit_tmg tmg, Cycles.max_cycle_ratio_brute tmg) with
    | Ok h, Some k, Some (b, _) ->
      let lawler_ok =
        match Ermes_tmg.Lawler.cycle_time tmg with
        | Ok (l, _) -> Ratio.equal l h.Howard.cycle_time
        | Error _ -> false
      in
      if not (Ratio.equal h.Howard.cycle_time k && Ratio.equal k b && lawler_ok) then
        incr mismatches
    | _ -> incr mismatches
  done;
  repro "Howard = Karp = Lawler = exhaustive enumeration on %d random unit-token nets (%d mismatches)"
    !nets !mismatches;
  (* Timing on the MPEG-2 TMG and a large synthetic one. *)
  let m = To_tmg.build (Lazy.force mpeg2) in
  let (_, t_howard) = time (fun () -> Howard.cycle_time m.To_tmg.tmg) in
  let (_, t_lawler) = time (fun () -> Ermes_tmg.Lawler.cycle_time m.To_tmg.tmg) in
  repro "Howard on the MPEG-2 TMG (%d transitions, %d places): %.3f ms (Lawler: %.3f ms)"
    (Tmg.transition_count m.To_tmg.tmg) (Tmg.place_count m.To_tmg.tmg) (1000. *. t_howard)
    (1000. *. t_lawler);
  let big = Generate.scaled ~processes:1000 ~channels:1500 () in
  let mb = To_tmg.build big in
  let (_, t_big) = time (fun () -> Howard.cycle_time mb.To_tmg.tmg) in
  repro "Howard on a 1,000-process TMG (%d transitions, %d places): %.1f ms"
    (Tmg.transition_count mb.To_tmg.tmg) (Tmg.place_count mb.To_tmg.tmg) (1000. *. t_big);
  repro "exhaustive enumeration is already intractable at this size (the paper's point)"

(* ------------------------------------------------------- ablation ordering *)

let ablation_ordering () =
  hr "Ablation - ordering algorithm vs conservative baseline vs exhaustive optimum";
  (* Small random DAG systems where the oracle is affordable. *)
  let rng = Random.State.make [| 2024 |] in
  let ri lo hi = lo + Random.State.int rng (hi - lo + 1) in
  let random_sys () =
    let layers = ri 2 4 in
    let sys = System.create () in
    let workers = ref [] in
    let layer_of = Hashtbl.create 16 in
    let id = ref 0 in
    for l = 0 to layers - 1 do
      for _ = 1 to ri 1 3 do
        let w = System.add_simple_process sys ~latency:(ri 0 9) ~area:0.01 (Printf.sprintf "w%d" !id) in
        incr id;
        Hashtbl.add layer_of w l;
        workers := w :: !workers
      done
    done;
    let workers = Array.of_list (List.rev !workers) in
    let src = System.add_simple_process sys ~latency:1 ~area:0. "src" in
    let snk = System.add_simple_process sys ~latency:1 ~area:0. "snk" in
    let seen = Hashtbl.create 16 in
    let next = ref 0 in
    let add s d =
      if s <> d && not (Hashtbl.mem seen (s, d)) then begin
        Hashtbl.add seen (s, d) ();
        ignore (System.add_channel sys ~name:(Printf.sprintf "c%d" !next) ~src:s ~dst:d ~latency:(ri 1 9));
        incr next
      end
    in
    Array.iter
      (fun w ->
        let l = Hashtbl.find layer_of w in
        (if l = 0 then add src w
         else
           let prev = Array.to_list workers |> List.filter (fun v -> Hashtbl.find layer_of v = l - 1) in
           add (List.nth prev (ri 0 (List.length prev - 1))) w);
        if l = layers - 1 then add w snk
        else
          let nxt = Array.to_list workers |> List.filter (fun v -> Hashtbl.find layer_of v = l + 1) in
          add w (List.nth nxt (ri 0 (List.length nxt - 1))))
      workers;
    for _ = 1 to ri 0 5 do
      let u = workers.(ri 0 (Array.length workers - 1)) in
      let v = workers.(ri 0 (Array.length workers - 1)) in
      if Hashtbl.find layer_of u < Hashtbl.find layer_of v then add u v
    done;
    sys
  in
  let n = if quick then 40 else 120 in
  (* Candidate generation draws from the shared rng, so it stays sequential
     (the candidate set is identical for any jobs value); the per-candidate
     evaluation — oracle + both ordering algorithms + local search on a
     private system — fans out over [jobs] domains. *)
  let candidates =
    let acc = ref [] in
    while List.length !acc < n do
      let sys = random_sys () in
      if System.order_combinations sys <= 3000. then acc := sys :: !acc
    done;
    List.rev !acc
  in
  let results =
    Parallel.map ~jobs
      (fun sys ->
        match Oracle.search ~limit:3001 sys with
        | None -> None
        | Some oracle ->
          let best = Ratio.to_float oracle.Oracle.best_cycle_time in
          Order.conservative sys;
          let cons = Ratio.to_float (analyze_exn sys).Perf.cycle_time in
          ignore (Order.apply_safe sys);
          let got = Ratio.to_float (analyze_exn sys).Perf.cycle_time in
          ignore (Order.local_search ~max_evaluations:2000 sys);
          let refined = Ratio.to_float (analyze_exn sys).Perf.cycle_time in
          Some (cons /. best, got /. best, refined /. best))
      candidates
    |> List.filter_map Fun.id
  in
  let total = List.length results in
  let cons_gaps = List.map (fun (c, _, _) -> c) results in
  let gaps = List.map (fun (_, g, _) -> g) results in
  let ls_gaps = List.map (fun (_, _, r) -> r) results in
  let optimal = List.length (List.filter (fun g -> g <= 1. +. 1e-9) gaps) in
  let ls_optimal = List.length (List.filter (fun g -> g <= 1. +. 1e-9) ls_gaps) in
  let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
  let worst xs = List.fold_left max 1. xs in
  repro "on %d small systems with exhaustive ground truth:" total;
  repro "  conservative baseline:   mean gap %.3fx, worst %.2fx" (mean cons_gaps)
    (worst cons_gaps);
  repro "  Algorithm 1 (safe):      optimal in %3d/%d, mean gap %.3fx, worst %.2fx" optimal
    total (mean gaps) (worst gaps);
  repro "  + local search (beyond the paper): optimal in %3d/%d, mean gap %.3fx, worst %.2fx"
    ls_optimal total (mean ls_gaps) (worst ls_gaps);
  metric "ablation_ordering.algorithm1.mean_gap" (mean gaps);
  metric "ablation_ordering.local_search.mean_gap" (mean ls_gaps);
  metric "ablation_ordering.local_search.optimal" (float_of_int ls_optimal);
  metric "ablation_ordering.total" (float_of_int total)

(* ------------------------------------------------------------ ablation DSE *)

let ablation_dse () =
  hr "Ablation - exploration with vs without channel reordering (paper Fig. 5 loop)";
  let m2p = Lazy.force m2_point in
  let tct = int_of_float (Ratio.to_float m2p.Frontier.cycle_time *. 2000. /. 3597.) in
  let run reorder =
    let sys = System.copy (Lazy.force mpeg2) in
    Frontier.select sys m2p;
    Order.conservative sys;
    let trace = Explore.run ~reorder ~tct sys in
    (Explore.final_cycle_time trace, Explore.final_area trace, trace.Explore.met,
     List.length trace.Explore.steps)
  in
  let ct1, a1, met1, it1 = run true in
  let ct2, a2, met2, it2 = run false in
  repro "with reordering:    CT %s area %.3f mm2 target %s (%d steps)"
    (Ratio.to_string ct1) a1 (if met1 then "met" else "missed") it1;
  repro "without reordering: CT %s area %.3f mm2 target %s (%d steps)"
    (Ratio.to_string ct2) a2 (if met2 then "met" else "missed") it2

(* ------------------------------------------------------- ermes frontier *)

let ermes_frontier () =
  hr "SS6 - richer explorations: the ERMES frontier vs the scalarization frontier";
  paper "'the proposed methodology ... allows us to perform richer design-space";
  paper "explorations and to obtain better implementations' (SS6)";
  let frontier = Lazy.force mpeg2_frontier in
  let m2p = Lazy.force m2_point in
  let m2ct = Ratio.to_float m2p.Frontier.cycle_time in
  (* Sweep targets across the frontier's dynamic range and let ERMES find a
     configuration per target; compare with the closest scalarization
     point. *)
  let fractions = if quick then [ 0.6; 1.0; 1.6 ] else [ 0.5; 0.7; 1.0; 1.4; 2.0; 3.0 ] in
  row "  target-CT   ERMES CT          ERMES area  cheapest frontier point meeting it@.";
  List.iter
    (fun f ->
      let tct = int_of_float (m2ct *. f) in
      let sys = System.copy (Lazy.force mpeg2) in
      Frontier.select sys m2p;
      Order.conservative sys;
      let trace = Explore.run ~max_iterations:10 ~tct sys in
      let ct = Explore.final_cycle_time trace in
      let area = Explore.final_area trace in
      (* What a designer would take from the scalarization frontier for this
         target: the cheapest point meeting it. *)
      let meeting =
        List.filter
          (fun (p : Frontier.point) -> Ratio.(p.Frontier.cycle_time <= Ratio.of_int tct))
          frontier
      in
      let pick =
        List.fold_left
          (fun best (p : Frontier.point) ->
            match best with
            | None -> Some p
            | Some b -> if p.Frontier.area < b.Frontier.area then Some p else best)
          None meeting
      in
      (match pick with
       | Some p ->
         row "  %8d   %-10s %s  %6.3f      CT=%-10s area=%6.3f  (ERMES %s)@." tct
           (Ratio.to_string ct)
           (if trace.Explore.met then "met   " else "missed")
           area
           (Ratio.to_string p.Frontier.cycle_time)
           p.Frontier.area
           (if area < p.Frontier.area -. 1e-9 then "smaller" else "within")
       | None ->
         row "  %8d   %-10s %s  %6.3f      (no frontier point meets the target)@." tct
           (Ratio.to_string ct)
           (if trace.Explore.met then "met   " else "missed")
           area))
    fractions;
  repro "at every achievable target the explored configuration needs no more area";
  repro "than the scalarization frontier's, usually much less (per-process ILP +";
  repro "reordering reach combinations the frontier's uniform weighting cannot)"

(* ------------------------------------------------------- ablation memory *)

let ablation_memory () =
  hr "Extension - memory co-optimization (the paper's stated future work, SS7/SS8)";
  paper "SS7: 'HLS tools create as many memory ports as the number of concurrent";
  paper "processes insisting on that memory and the memory size scales badly with";
  paper "the number of ports' - the argument for the three-phase process style";
  let module Memory = Ermes_hls.Memory in
  let module Behavior = Ermes_hls.Behavior in
  let module Op = Ermes_hls.Op in
  let module Design = Ermes_hls.Design in
  row "  a 16K-word local SRAM at increasing port counts:@.";
  row "    ports   multi-ported(mm2)   banked(mm2)   multi-port penalty@.";
  let base = Memory.area { Memory.words = 16384; banks = 1 } in
  List.iter
    (fun n ->
      let mp = Memory.multiport_area ~words:16384 ~ports:n in
      let bk = Memory.area { Memory.words = 16384; banks = n } in
      row "      %2d        %6.4f            %6.4f          %.2fx@." n (mp *. 1e-6)
        (bk *. 1e-6) (mp /. base))
    [ 1; 2; 4; 8 ];
  repro "splitting one process into 8 sharing a memory costs 5.2x the storage area;";
  repro "banking inside one three-phase process delivers the same 8 ports for ~1.05x";
  (* Banking as a micro-architecture knob on a memory-bound kernel. *)
  let kernel =
    Behavior.make ~local_words:16384 "stream_kernel"
      [
        Behavior.loop ~label:"stream" ~trip:1024
          (Array.init 16 (fun i ->
               if i < 8 then Op.op Op.Mem else Op.op ~deps:[ i - 8 ] Op.Mem));
      ]
  in
  row "  banking knob on a memory-bound kernel (trip 1024, 16 mem ops/iter):@.";
  row "    banks   latency(cycles)   area(mm2)@.";
  List.iter
    (fun banking ->
      let p =
        Design.evaluate kernel
          { Design.unroll = 1; pipelined = true; sharing = Design.Full; banking }
      in
      row "      %2d        %6d         %6.4f@." banking p.Design.latency (p.Design.area *. 1e-6))
    [ 1; 2; 4; 8 ];
  let frontier = Design.pareto_frontier kernel in
  repro "the banking knob contributes %d points to the kernel's %d-point Pareto frontier"
    (List.length
       (List.sort_uniq compare
          (List.map (fun (p : Design.point) -> p.Design.knobs.Design.banking) frontier)))
    (List.length frontier)

(* ------------------------------------------------------ incremental engine *)

(* A layered system whose order space is oracle-affordable but nontrivial:
   hub 4!·3! = 144 times hub2 3!·2! = 12, i.e. 1,728 combinations. *)
let oracle_playground () =
  let sys = System.create ~name:"oracle-playground" () in
  let proc lat name = System.add_simple_process sys ~latency:lat ~area:0.01 name in
  let chan name src dst lat =
    ignore (System.add_channel sys ~name ~src ~dst ~latency:lat)
  in
  let srcs = Array.init 4 (fun i -> proc (2 + (3 * i)) (Printf.sprintf "src%d" i)) in
  let hub = proc 7 "hub" in
  let mids = Array.init 3 (fun i -> proc (3 + (2 * i)) (Printf.sprintf "mid%d" i)) in
  let hub2 = proc 5 "hub2" in
  let snks = Array.init 2 (fun i -> proc (1 + i) (Printf.sprintf "snk%d" i)) in
  Array.iteri (fun i s -> chan (Printf.sprintf "a%d" i) s hub (1 + (2 * i))) srcs;
  Array.iteri (fun i m -> chan (Printf.sprintf "b%d" i) hub m (5 - i)) mids;
  Array.iteri (fun i m -> chan (Printf.sprintf "c%d" i) m hub2 (2 + i)) mids;
  Array.iteri (fun i t -> chan (Printf.sprintf "d%d" i) hub2 t (3 - i)) snks;
  sys

let incremental () =
  hr "Incremental engine - session probes vs fresh analysis; multicore oracle";
  (* Repeated probes in the shape of every search inner loop: mutate a
     selection (even steps) or swap a statement order (odd steps), then
     re-analyze. The fresh path rebuilds the TMG and solves cold each time;
     the session path edits the TMG in place and solves warm. *)
  let k = if quick then 100 else 400 in
  let mutate sys procs i =
    let p = procs.(i mod Array.length procs) in
    if i land 1 = 0 then
      let n = Array.length (System.impls sys p) in
      System.select sys p ((System.selected sys p + 1) mod n)
    else
      match System.put_order sys p with
      | a :: b :: rest -> System.set_put_order sys p (b :: a :: rest)
      | _ -> ()
  in
  let run_probes analyze sys =
    let procs = Array.of_list (System.processes sys) in
    let cts = ref [] in
    let (), t =
      time (fun () ->
          for i = 0 to k - 1 do
            mutate sys procs i;
            cts := (analyze sys : Perf.analysis).Perf.cycle_time :: !cts
          done)
    in
    (List.rev !cts, t)
  in
  let base = Lazy.force mpeg2 in
  let fresh_cts, t_fresh = run_probes analyze_exn (System.copy base) in
  let inc_sys = System.copy base in
  let session = Incremental.create inc_sys in
  let inc_cts, t_inc = run_probes (fun _ -> Incremental.analyze_exn session) inc_sys in
  if not (List.for_all2 Ratio.equal fresh_cts inc_cts) then
    failwith "incremental bench: session disagrees with fresh analysis";
  let stats = Incremental.stats session in
  repro "%d mutate+analyze probes on the MPEG-2 system (identical cycle times):" k;
  repro "  fresh rebuild each probe: %6.2f ms total (%.3f ms/probe)" (1000. *. t_fresh)
    (1000. *. t_fresh /. float_of_int k);
  repro "  incremental session:      %6.2f ms total (%.3f ms/probe) — %.1fx faster"
    (1000. *. t_inc) (1000. *. t_inc /. float_of_int k) (t_fresh /. t_inc);
  repro "  session absorbed %d delay edits + %d rethreads, %d rebuilds"
    stats.Incremental.delay_edits stats.Incremental.rethreads stats.Incremental.rebuilds;
  metric "incremental.fresh_s" t_fresh;
  metric "incremental.session_s" t_inc;
  metric "incremental.speedup" (t_fresh /. t_inc);
  (* Warm-start payoff isolated to the solver: delay perturbations on one
     prebuilt MPEG-2 TMG, a cold Howard run per probe vs one persistent
     warm solver. Both runs start from a fresh build, so they see the same
     perturbation sequence and must agree on every cycle time. *)
  let k_warm = if quick then 200 else 1000 in
  let run_howard mk_solve =
    let m = To_tmg.build base in
    let tmg = m.To_tmg.tmg in
    let compute = m.To_tmg.compute_transition in
    let solve = mk_solve tmg in
    let cts = ref [] in
    let (), t =
      time (fun () ->
          for i = 0 to k_warm - 1 do
            let tr = compute.(i mod Array.length compute).(0) in
            Tmg.set_delay tmg tr (1 + ((Tmg.delay tmg tr + i) mod 50));
            match solve () with
            | Ok (r : Howard.result) -> cts := r.Howard.cycle_time :: !cts
            | Error _ -> failwith "howard-warm bench: unexpected verdict"
          done)
    in
    (List.rev !cts, t)
  in
  let cold_cts, t_cold = run_howard (fun tmg () -> Howard.cycle_time tmg) in
  let warm_cts, t_warm =
    run_howard (fun tmg ->
        let solver = Howard.make_solver tmg in
        fun () -> Howard.solve solver)
  in
  if not (List.for_all2 Ratio.equal cold_cts warm_cts) then
    failwith "howard-warm bench: warm solver disagrees with cold analysis";
  repro "%d delay-perturbation solves on the MPEG-2 TMG (identical cycle times):"
    k_warm;
  repro "  cold solve each probe:    %6.2f ms total (%.3f ms/solve)" (1000. *. t_cold)
    (1000. *. t_cold /. float_of_int k_warm);
  repro "  warm persistent solver:   %6.2f ms total (%.3f ms/solve) — %.1fx faster"
    (1000. *. t_warm)
    (1000. *. t_warm /. float_of_int k_warm)
    (t_cold /. t_warm);
  metric "howard_warm.cold_s" t_cold;
  metric "howard_warm.warm_s" t_warm;
  metric "howard_warm.speedup" (t_cold /. t_warm);
  (* Same loop on a 1,000-process synthetic SoC, where the per-probe rebuild
     the session avoids is ~10,000x the delay edit that replaces it. *)
  let k_big = if quick then 20 else 50 in
  let big = Generate.scaled ~processes:1000 ~channels:1500 () in
  let run_big analyze sys =
    let procs = Array.of_list (System.processes sys) in
    let cts = ref [] in
    let (), t =
      time (fun () ->
          for i = 0 to k_big - 1 do
            mutate sys procs (2 * i + 1) (* odd steps: order swaps *);
            cts := (analyze sys : Perf.analysis).Perf.cycle_time :: !cts
          done)
    in
    (List.rev !cts, t)
  in
  let fresh_cts, t_fresh_big = run_big analyze_exn (System.copy big) in
  let big_inc = System.copy big in
  let big_session = Incremental.create big_inc in
  let inc_cts, t_inc_big =
    run_big (fun _ -> Incremental.analyze_exn big_session) big_inc
  in
  if not (List.for_all2 Ratio.equal fresh_cts inc_cts) then
    failwith "incremental bench: session disagrees with fresh analysis (synth-1000)";
  repro "%d order-swap probes on a 1,000-process synthetic SoC:" k_big;
  repro "  fresh rebuild each probe: %6.1f ms total (%.2f ms/probe)"
    (1000. *. t_fresh_big)
    (1000. *. t_fresh_big /. float_of_int k_big);
  repro "  incremental session:      %6.1f ms total (%.2f ms/probe) — %.1fx faster"
    (1000. *. t_inc_big)
    (1000. *. t_inc_big /. float_of_int k_big)
    (t_fresh_big /. t_inc_big);
  metric "incremental.synth1000.fresh_s" t_fresh_big;
  metric "incremental.synth1000.session_s" t_inc_big;
  metric "incremental.synth1000.speedup" (t_fresh_big /. t_inc_big);
  (* The multicore oracle: same 1,728-combination search at 1, 2 and 4
     domains; the three results must be bit-identical. *)
  let osys = oracle_playground () in
  repro "oracle playground: %.0f order combinations" (System.order_combinations osys);
  let results =
    List.map
      (fun j ->
        let r, t = time (fun () -> Oracle.search ~limit:10_000 ~jobs:j osys) in
        let r = Option.get r in
        repro "  oracle ~jobs:%d: optimum %s over %d combinations (%d deadlock) in %.2f ms"
          j
          (Ratio.to_string r.Oracle.best_cycle_time)
          r.Oracle.evaluated r.Oracle.deadlocked (1000. *. t);
        metric (Printf.sprintf "incremental.oracle.jobs%d_s" j) t;
        (j, r))
      [ 1; 2; 4 ]
  in
  let _, r1 = List.hd results in
  List.iter
    (fun (_, r) ->
      if
        not
          (Ratio.equal r.Oracle.best_cycle_time r1.Oracle.best_cycle_time
          && r.Oracle.evaluated = r1.Oracle.evaluated
          && r.Oracle.deadlocked = r1.Oracle.deadlocked)
      then failwith "incremental bench: parallel oracle deviates from sequential")
    results;
  repro "  all job counts agree bit-for-bit (%d host cores available)"
    (Parallel.available ())

(* ------------------------------------------------------- bechamel microbench *)

let micro () =
  hr "Microbenchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let mpeg2_sys = Lazy.force mpeg2 in
  let mpeg2_tmg = (To_tmg.build mpeg2_sys).To_tmg.tmg in
  let synth_sys = Generate.scaled ~processes:1000 ~channels:1500 () in
  let synth_tmg = (To_tmg.build synth_sys).To_tmg.tmg in
  let motiv = Motivating.suboptimal () in
  let block = Array.init 64 (fun i -> ((i * 37) mod 256) - 128) in
  let frame_a = Ermes_mpeg2.Frame.synthetic ~width:64 ~height:48 ~index:0 in
  let frame_b = Ermes_mpeg2.Frame.synthetic ~width:64 ~height:48 ~index:1 in
  let tests =
    [
      Test.make ~name:"howard/motivating (15t,23p)"
        (Staged.stage (fun () -> Howard.cycle_time (To_tmg.build motiv).To_tmg.tmg));
      Test.make ~name:"howard/mpeg2 (88t,148p)"
        (Staged.stage (fun () -> Howard.cycle_time mpeg2_tmg));
      Test.make ~name:"howard/synth-1000"
        (Staged.stage (fun () -> Howard.cycle_time synth_tmg));
      Test.make ~name:"howard-warm/mpeg2"
        (Staged.stage
           (let solver = Howard.make_solver mpeg2_tmg in
            fun () -> Howard.solve solver));
      Test.make ~name:"fresh-analyze/synth-1000"
        (Staged.stage (fun () -> Perf.analyze synth_sys));
      Test.make ~name:"incremental-vs-fresh/synth-1000"
        (Staged.stage
           (let session = Incremental.create synth_sys in
            let p0 = List.hd (System.processes synth_sys) in
            fun () -> Incremental.probe session [ Incremental.Slow_process (p0, 1) ]));
      Test.make ~name:"karp/mpeg2-unit-ring"
        (Staged.stage
           (let g = Tmg.graph mpeg2_tmg in
            fun () -> ignore g;
              Karp.max_cycle_mean
                (Ermes_digraph.Digraph.map_labels ~vertex:(fun _ -> ()) ~arc:(fun (_, _) -> 1) g)));
      Test.make ~name:"ordering/mpeg2"
        (Staged.stage (fun () -> Order.compute_labels mpeg2_sys));
      Test.make ~name:"ordering/synth-1000"
        (Staged.stage (fun () -> Order.compute_labels synth_sys));
      Test.make ~name:"to-tmg/mpeg2" (Staged.stage (fun () -> To_tmg.build mpeg2_sys));
      Test.make ~name:"sim-16-frames/motivating"
        (Staged.stage (fun () -> Sim.run ~max_iterations:16 motiv));
      Test.make ~name:"dct-8x8-forward" (Staged.stage (fun () -> Ermes_mpeg2.Dct.forward block));
      Test.make ~name:"rtl-interp-1-frame/motivating"
        (Staged.stage
           (let rtl = Ermes_rtl.Soc_rtl.build motiv in
            let snk = List.hd (System.sinks motiv) in
            fun () ->
              let sim = Ermes_rtl.Interp.create rtl.Ermes_rtl.Soc_rtl.design in
              let iter = rtl.Ermes_rtl.Soc_rtl.iterations_of.(snk) in
              while Ermes_rtl.Interp.peek sim iter < 1 do
                Ermes_rtl.Interp.step sim
              done));
      Test.make ~name:"motion-search-16x16-r7"
        (Staged.stage (fun () ->
             Ermes_mpeg2.Motion.search ~reference:frame_a ~current:frame_b ~x0:16 ~y0:16
               ~size:16 ~range:7));
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  row "  %-32s %14s@." "benchmark" "time/run";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (v :: _) -> v
            | _ -> nan
          in
          let pretty =
            if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
            else Printf.sprintf "%8.0f ns" ns
          in
          metric (Printf.sprintf "micro.%s.ns" name) ns;
          row "  %-32s %14s@." name pretty)
        results)
    tests

(* ----------------------------------------------------------------- runtime *)

(* Supervised-runtime costs: what the retrying pool adds over the fail-fast
   pool on representative work, and what crash-safe journalling costs per
   checkpointed work unit. *)
let runtime () =
  hr "Supervised runtime - pool overhead, journal durability cost";
  let module Supervise = Ermes_runtime.Supervise in
  let module Journal = Ermes_runtime.Journal in
  let n = if quick then 32 else 128 in
  let base = Lazy.force mpeg2 in
  let copies = Array.init n (fun _ -> System.copy base) in
  let work i = (analyze_exn copies.(i)).Perf.cycle_time in
  let (), t_plain =
    time (fun () -> ignore (Parallel.map ~jobs work (List.init n Fun.id)))
  in
  let (), t_sup =
    time (fun () ->
        let outcomes, _ = Supervise.run ~jobs n work in
        Array.iter
          (function
            | Supervise.Done _ -> ()
            | _ -> failwith "runtime bench: unexpected task failure")
          outcomes)
  in
  repro "%d MPEG-2 analyses over %d domain(s):" n jobs;
  repro "  fail-fast pool:  %7.2f ms" (1000. *. t_plain);
  repro "  supervised pool: %7.2f ms (%.2fx)" (1000. *. t_sup) (t_sup /. t_plain);
  metric "runtime.parallel_s" t_plain;
  metric "runtime.supervised_s" t_sup;
  metric "runtime.supervision_overhead" (t_sup /. t_plain);
  (* Every append renders and atomically replaces the whole journal, so the
     cost grows with journal length — measure the amortized cost across a
     campaign-sized record count, which is what a checkpointed run pays. *)
  let records = if quick then 200 else 500 in
  let path = Filename.temp_file "ermes_bench" ".journal" in
  let j = Journal.start ~meta:"bench" ~kind:"bench" path in
  let payload = String.make 96 'x' in
  let (), t_j =
    time (fun () ->
        for _ = 1 to records do
          Journal.append j payload
        done)
  in
  Sys.remove path;
  repro "  journal: %d atomic appends in %7.2f ms (%.3f ms/append amortized)"
    records (1000. *. t_j)
    (1000. *. t_j /. float_of_int records);
  metric "runtime.journal_append_ms" (1000. *. t_j /. float_of_int records)

(* --------------------------------------------------------------- CSR core *)

module Csr = Ermes_tmg.Csr
module Verify = Ermes_verify.Verify

let min_time ?(reps = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let r, t = time f in
    result := Some r;
    best := min !best t
  done;
  (Option.get !result, !best)

(* Pointer-based Howard vs the flat CSR port, cold, on the synth-1000 SoC.
   The two must agree bit for bit — same ratio, witness, potentials and
   iteration counts — so the speedup is for the identical computation. *)
let csr_section () =
  hr "CSR core - flat-array Howard vs pointer solver (synth-1000, cold)";
  let sys = Generate.scaled ~processes:1000 ~channels:1500 () in
  let tmg = (To_tmg.build sys).To_tmg.tmg in
  let reps = if quick then 3 else 5 in
  let ptr, t_ptr = min_time ~reps (fun () -> Howard.cycle_time tmg) in
  let flat, t_csr = min_time ~reps (fun () -> Csr.cycle_time tmg) in
  (match (ptr, flat) with
  | Ok p, Ok f ->
    if
      not
        (Ratio.equal p.Howard.cycle_time f.Howard.cycle_time
        && p.Howard.critical_places = f.Howard.critical_places
        && p.Howard.critical_transitions = f.Howard.critical_transitions
        && p.Howard.potentials = f.Howard.potentials
        && p.Howard.howard_iterations = f.Howard.howard_iterations
        && p.Howard.cancel_iterations = f.Howard.cancel_iterations)
    then failwith "csr bench: CSR result differs from the pointer solver"
  | _ -> failwith "csr bench: synth-1000 did not analyze");
  repro "pointer Howard: %7.2f ms    CSR Howard: %7.2f ms    (%.2fx)"
    (1000. *. t_ptr) (1000. *. t_csr) (t_ptr /. t_csr);
  repro "  verdict, witness, potentials and iteration counts are bit-identical";
  metric "csr.howard.pointer_s" t_ptr;
  metric "csr.howard.csr_s" t_csr;
  metric "csr.howard.speedup" (t_ptr /. t_csr)

(* -------------------------------------------------------------------- rtl *)

(* The ninth oracle's cost profile: how fast the two-phase interpreter
   clocks the generated control skeleton, and what co-simulating a case
   adds over the discrete-event simulation it cross-checks. Both headline
   numbers are ratios of work done on this host, so they gate in CI like
   the *.speedup metrics do. *)
let rtl_bench () =
  hr "RTL co-simulation - interpreter throughput and oracle overhead";
  let module Soc_rtl = Ermes_rtl.Soc_rtl in
  let module Interp = Ermes_rtl.Interp in
  let sys = Motivating.suboptimal () in
  let rtl, t_build = min_time (fun () -> Soc_rtl.build sys) in
  let nsig = Array.length rtl.Soc_rtl.design.Ermes_rtl.Ir.signals in
  let cycles = if quick then 300_000 else 2_000_000 in
  let (), t_run =
    min_time (fun () ->
        let ip = Interp.create rtl.Soc_rtl.design in
        Interp.run ip ~cycles)
  in
  let cps = float_of_int cycles /. t_run in
  repro "build: %.3f ms (%d signals); interpreter: %.2f Mcycles/s (%d cycles)"
    (1000. *. t_build) nsig (cps /. 1e6) cycles;
  metric "rtl.build_ms" (1000. *. t_build);
  metric "rtl.interp.cycles_per_sec" cps;
  (* Oracle overhead: one co-simulated measurement vs the discrete-event
     simulation it is diffed against, at the fuzzer's default horizon. The
     two must agree — a silent divergence here would invalidate the ratio. *)
  let rounds = 64 in
  let rtl_ct, t_cosim = min_time (fun () -> Soc_rtl.measured_cycle_time ~rounds sys) in
  let des_ct, t_sim = min_time (fun () -> Sim.steady_cycle_time ~rounds sys) in
  (match (rtl_ct, des_ct) with
  | Some r, Ok (Sim.Period d) when Ratio.equal r d -> ()
  | _ -> failwith "rtl bench: co-simulation disagrees with the simulator");
  repro "cosim %.3f ms vs simulation %.3f ms at %d rounds: %.1fx overhead"
    (1000. *. t_cosim) (1000. *. t_sim) rounds (t_cosim /. t_sim);
  metric "rtl.cosim_ms" (1000. *. t_cosim);
  metric "rtl.sim_ms" (1000. *. t_sim);
  metric "rtl.cosim.overhead_x" (t_cosim /. t_sim)

(* ------------------------------------------------------------------ scale *)

let peak_rss_mb () =
  try
    In_channel.with_open_text "/proc/self/status" @@ fun ic ->
    let rec go () =
      match In_channel.input_line ic with
      | None -> 0.
      | Some line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          Scanf.sscanf
            (String.sub line 6 (String.length line - 6))
            " %d kB"
            (fun kb -> float_of_int kb /. 1024.)
        else go ()
    in
    go ()
  with _ -> 0.

(* Cold Howard, warm Howard and certificate checking on tori of 10^3..10^6
   transitions. The torus pins its maximum cycle ratio to exactly 128/1 (hot
   row 0 against jittered cold rows), so a wrong verdict at scale fails the
   bench rather than inflating a number. *)
let scale () =
  hr "Scale - CSR analysis throughput on 10^3..10^6-transition SoCs";
  let sizes =
    [ ("1e3", 25, 40); ("1e4", 100, 100); ("1e5", 250, 400) ]
    @ (if quick then [] else [ ("1e6", 1000, 1000) ])
  in
  row "  %-6s %12s %12s %12s %14s %10s@." "nodes" "cold (ms)" "warm (ms)"
    "certify (ms)" "nodes/sec" "rss (MB)";
  List.iter
    (fun (label, rows, cols) ->
      let n = rows * cols in
      let tmg = Generate.torus_tmg ~rows ~cols () in
      let cold, t_cold = time (fun () -> Csr.cycle_time tmg) in
      let solver = Csr.make_solver tmg in
      ignore (Csr.solve solver);
      let warm, t_warm = time (fun () -> Csr.solve solver) in
      (match (cold, warm) with
      | Ok c, Ok w ->
        let expected = Ratio.make 128 1 in
        if not (Ratio.equal c.Howard.cycle_time expected && Ratio.equal w.Howard.cycle_time expected)
        then Format.kasprintf failwith "scale bench: torus %s cycle time %a, expected 128/1"
               label Ratio.pp c.Howard.cycle_time
      | _ -> failwith ("scale bench: torus " ^ label ^ " did not analyze"));
      let frozen = Csr.of_tmg tmg in
      let cert = Verify.of_howard_csr frozen cold in
      let checked, t_cert = time (fun () -> Verify.check_csr (Csr.of_tmg tmg) cert) in
      (match checked with
      | Ok () -> ()
      | Error v ->
        Format.kasprintf failwith "scale bench: torus %s certificate rejected: %a" label
          Verify.pp_violation v);
      let nps = float_of_int n /. t_cold in
      let rss = peak_rss_mb () in
      row "  %-6s %12.2f %12.2f %12.2f %14.0f %10.1f@." label (1000. *. t_cold)
        (1000. *. t_warm) (1000. *. t_cert) nps rss;
      metric (Printf.sprintf "scale.cold_s.%s" label) t_cold;
      metric (Printf.sprintf "scale.warm_s.%s" label) t_warm;
      metric (Printf.sprintf "scale.certify_s.%s" label) t_cert;
      metric (Printf.sprintf "scale.nodes_per_sec.%s" label) nps;
      metric (Printf.sprintf "scale.peak_rss_mb.%s" label) rss)
    sizes;
  (* The acyclic and hierarchical families at 10^5, as verdict coverage: the
     grid exercises the No_cycle/Acyclic path (Kahn at scale), the clusters
     the many-SCC path; both certificates must check. *)
  let grid = Generate.grid_tmg ~rows:250 ~cols:400 () in
  let g_out = Csr.cycle_time grid in
  (match g_out with
  | Error Howard.No_cycle -> ()
  | _ -> failwith "scale bench: 1e5 grid should be acyclic");
  (match Verify.check_csr (Csr.of_tmg grid) (Verify.of_howard_csr (Csr.of_tmg grid) g_out) with
  | Ok () -> ()
  | Error v ->
    Format.kasprintf failwith "scale bench: grid certificate rejected: %a"
      Verify.pp_violation v);
  let clusters = Generate.clusters_tmg ~clusters:1000 ~cluster_size:100 () in
  let c_out = Csr.cycle_time clusters in
  (match c_out with
  | Ok r when Ratio.equal r.Howard.cycle_time (Ratio.make 128 1) -> ()
  | _ -> failwith "scale bench: 1e5 clusters should run at 128/1");
  (match
     Verify.check_csr (Csr.of_tmg clusters) (Verify.of_howard_csr (Csr.of_tmg clusters) c_out)
   with
  | Ok () -> ()
  | Error v ->
    Format.kasprintf failwith "scale bench: clusters certificate rejected: %a"
      Verify.pp_violation v);
  repro "1e5 grid (acyclic) and 1e5 clusters-of-clusters verdicts certified"

(* ------------------------------------------------------------------- chaos *)

(* The chaos layer's standing claim: routing every syscall of the journal
   and the daemon through the pluggable Io record costs nothing measurable
   when no injector is installed. Benchmarked as min-over-reps on the two
   hot paths — journal-append-shaped bulk writes and a serve-request-shaped
   frame round trip — and gated loudly at 5% so the claim cannot rot. *)
let chaos_bench () =
  hr "Chaos layer - passthrough-Io overhead on the I/O hot paths";
  let module Chaos = Ermes_chaos.Chaos in
  let module Sproto = Ermes_serve.Proto in
  let io = Chaos.Io.passthrough in
  let reps = 7 in
  (* Journal appends render the whole file and write it in one call; model
     the write with render-sized buffers against /dev/null so the syscall
     is real but storage noise is not. *)
  let fd = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let payload = String.make 4096 'x' in
  let n = if quick then 50_000 else 200_000 in
  let (), t_direct =
    min_time ~reps (fun () ->
        for _ = 1 to n do
          ignore (Unix.write_substring fd payload 0 (String.length payload))
        done)
  in
  let (), t_io =
    min_time ~reps (fun () ->
        for _ = 1 to n do
          ignore (io.Chaos.Io.write fd payload 0 (String.length payload))
        done)
  in
  Unix.close fd;
  let jx = t_io /. t_direct in
  (* A serve request round trip: frame a small JSON request over a
     socketpair, read it back and decode it — the daemon's per-request
     socket work, with and without the Io indirection. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let req =
    Sproto.frame
      (Sproto.to_string
         (Sproto.Obj [ ("id", Sproto.Int 1); ("verb", Sproto.Str "ping") ]))
  in
  let buf = Bytes.create 4096 in
  let m = if quick then 20_000 else 50_000 in
  let roundtrip write read =
    let dec = Sproto.decoder () in
    let wrote = write a req 0 (String.length req) in
    if wrote <> String.length req then failwith "chaos bench: short pipe write";
    let rec drain () =
      match Sproto.next dec with
      | Ok (Some p) -> p
      | Ok None ->
        let k = read b buf 0 (Bytes.length buf) in
        Sproto.feed dec buf k;
        drain ()
      | Error e -> failwith ("chaos bench: " ^ e)
    in
    match Sproto.parse_request (drain ()) with
    | Ok r -> if r.Sproto.verb <> "ping" then failwith "chaos bench: bad verb"
    | Error e -> failwith ("chaos bench: " ^ e)
  in
  let (), t_frame_direct =
    min_time ~reps (fun () ->
        for _ = 1 to m do
          roundtrip
            (fun fd s off len -> Unix.write_substring fd s off len)
            Unix.read
        done)
  in
  let (), t_frame_io =
    min_time ~reps (fun () ->
        for _ = 1 to m do
          roundtrip io.Chaos.Io.write io.Chaos.Io.read
        done)
  in
  Unix.close a;
  Unix.close b;
  let fx = t_frame_io /. t_frame_direct in
  repro "%d 4 KiB writes:          direct %7.2f ms   via Io %7.2f ms  (%.3fx)"
    n (1000. *. t_direct) (1000. *. t_io) jx;
  repro "%d framed round trips:    direct %7.2f ms   via Io %7.2f ms  (%.3fx)"
    m
    (1000. *. t_frame_direct)
    (1000. *. t_frame_io)
    fx;
  metric "chaos.journal_write_direct_s" t_direct;
  metric "chaos.journal_write_io_s" t_io;
  metric "chaos.journal_write_overhead_x" jx;
  metric "chaos.frame_roundtrip_direct_s" t_frame_direct;
  metric "chaos.frame_roundtrip_io_s" t_frame_io;
  metric "chaos.frame_roundtrip_overhead_x" fx;
  if jx > 1.05 || fx > 1.05 then
    failwith
      (Printf.sprintf
         "chaos bench: passthrough Io exceeds the 5%% overhead budget (journal \
          %.3fx, frame %.3fx)"
         jx fx)

(* -------------------------------------------------------------------- main *)

let sections =
  [
    ("table1", table1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("m1", m1);
    ("fig6-timing", fig6_timing);
    ("fig6-area", fig6_area);
    ("scalability", scalability);
    ("ablation-mcm", ablation_mcm);
    ("ablation-ordering", ablation_ordering);
    ("ablation-dse", ablation_dse);
    ("ablation-memory", ablation_memory);
    ("ermes-frontier", ermes_frontier);
    ("incremental", incremental);
    ("csr", csr_section);
    ("rtl", rtl_bench);
    ("scale", scale);
    ("runtime", runtime);
    ("chaos", chaos_bench);
    ("micro", micro);
  ]

let () =
  let wanted =
    (* Everything that is not a flag (or a flag's value) is a section name. *)
    let rec keep = function
      | [] -> []
      | "--quick" :: tl -> keep tl
      | ("--json" | "--jobs") :: _ :: tl -> keep tl
      | a :: tl -> a :: keep tl
    in
    keep (List.tl (Array.to_list Sys.argv))
  in
  let to_run =
    if wanted = [] then sections
    else
      List.filter_map
        (fun w ->
          match List.assoc_opt w sections with
          | Some f -> Some (w, f)
          | None ->
            Printf.eprintf "unknown section %S (known: %s)\n" w
              (String.concat " " (List.map fst sections));
            exit 1)
        wanted
  in
  (* Collect the instrumentation counters alongside the timings: they land in
     --json as obs.* metrics, so a perf regression can be correlated with a
     behavioural change (more rebuilds, fewer warm solves) from the same
     artifact. *)
  Ermes_obs.Obs.set_clock Unix.gettimeofday;
  Ermes_obs.Obs.enable ();
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      let (), t = time f in
      metric (Printf.sprintf "section.%s.seconds" name) t)
    to_run;
  Format.printf "@.total bench time: %.1f s@." (Unix.gettimeofday () -. t0);
  List.iter
    (fun (k, v) -> metric ("obs." ^ k) (float_of_int v))
    (Ermes_obs.Obs.counters ());
  match json_file with
  | Some file ->
    write_json file;
    Format.printf "metrics written to %s@." file
  | None -> ()
